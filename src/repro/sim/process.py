"""Generator-backed simulation processes.

A :class:`Process` wraps a Python generator.  Each ``yield`` hands an
:class:`~repro.sim.events.Event` to the kernel; the process is resumed with
the event's value when it fires (or has the event's exception thrown into it
when the event failed).  Processes are themselves events that fire when the
generator returns, so processes can wait for each other.

PERF note: ``_resume`` is one of the two hottest frames of the kernel
(with ``Environment.run``); it caches the generator's bound ``send``/
``throw`` methods at construction and appends its completion entry to the
environment's zero-delay FIFO lane directly, following the scheduling
invariants documented in ``sim/environment.py``.
"""

from __future__ import annotations

from types import GeneratorType
from typing import TYPE_CHECKING, Any, Generator, Optional

from .errors import Interrupt, SimulationError
from .events import Event, Initialize, NORMAL, PENDING, URGENT

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """An active component of the simulation.

    Created through :meth:`Environment.process`.  The process event fires
    with the generator's return value when the generator finishes, or fails
    with the escaping exception.
    """

    __slots__ = ("_generator", "_send", "_throw", "_target", "name", "daemon")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: Optional[str] = None, daemon: bool = False) -> None:
        if not isinstance(generator, GeneratorType):
            raise ValueError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        # Bound-method caches: saves two attribute lookups per resume.
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or generator.__name__
        #: Daemon processes are service loops expected to outlive the run
        #: (exempt from sanitizer alive-process reports).
        self.daemon = daemon
        #: The event the process is currently waiting for (None if running
        #: right now or finished).
        self._target: Optional[Event] = None
        sanitizer = env.sanitizer
        if sanitizer is not None:
            sanitizer.track_process(self)
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        return self._target

    @property
    def is_alive(self) -> bool:
        """True until the wrapped generator has terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process is unregistered from its current target event (the event
        stays pending and may fire later without consequence for this
        process) and resumed immediately with the interrupt exception.
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("A process is not allowed to interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self]
        self.env.schedule(interrupt_event, priority=URGENT)

        # Deschedule from the old target so a later trigger does not resume
        # the process twice.
        if self._target is not None and self._target.callbacks is not None:
            if self in self._target.callbacks:
                self._target.callbacks.remove(self)
        self._target = None

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_proc = self

        while True:
            try:
                if event._ok:
                    next_event = self._send(event._value)
                else:
                    # The event failed: throw its exception into the process.
                    event._defused = True
                    exc = event._value
                    if isinstance(exc, BaseException):
                        next_event = self._throw(exc)
                    else:  # pragma: no cover - defensive
                        next_event = self._throw(SimulationError(repr(exc)))
            except StopIteration as stop:
                # Process finished normally.
                self._target = None
                env._active_proc = None
                self._ok = True
                self._value = stop.value
                env._eid = eid = env._eid + 1
                env._fifo.append((env._now, NORMAL, eid, self))
                return
            except BaseException as exc:
                # Process died with an exception -> fail the process event.
                self._target = None
                env._active_proc = None
                self._ok = False
                self._value = exc
                env._eid = eid = env._eid + 1
                env._fifo.append((env._now, NORMAL, eid, self))
                return

            # PERF: duck-typed dispatch — every kernel event type exposes
            # ``callbacks``; yielding anything else raises AttributeError
            # (a zero-cost try on 3.11+), replacing an isinstance check on
            # the hot path.
            try:
                callbacks = next_event.callbacks
            except AttributeError:
                self._fail_nonevent(next_event)  # error path; resumes below
                return
            if callbacks is not None:
                # Event not yet processed: register and suspend.  The
                # process registers *itself* — see the class docstring /
                # ``__call__`` note below.
                callbacks.append(self)
                self._target = next_event
                break
            # Event already processed: loop around and continue
            # immediately with its stored outcome.
            event = next_event

        env._active_proc = None

    def _fail_nonevent(self, next_event: Any) -> None:
        """Shared error tail for a generator yielding a non-event."""
        env = self.env
        self._target = None
        env._active_proc = None
        error = SimulationError(
            f"Process {self.name!r} yielded non-event {next_event!r}"
        )
        try:
            self._throw(error)
        except BaseException:  # simlint: disable=swallowed-error -- the error is re-raised via the process event two lines down
            pass
        self._ok = False
        self._value = error
        env._eid = eid = env._eid + 1
        env._fifo.append((env._now, NORMAL, eid, self))

    #: Processes register themselves (not a bound method) as event
    #: callbacks: ``Environment.run`` recognises the Process instance and
    #: inlines the resume fast path without a frame, while every generic
    #: dispatch site (``Environment.step``, ``Timer._pop_shot``, user
    #: code calling ``callback(event)``) still works because calling the
    #: process IS calling ``_resume``.
    __call__ = _resume

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Process({self.name}) object at {id(self):#x}>"
