"""Exception types used by the discrete-event simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` at a target event.

    The payload carries the value of the event that stopped the run so
    ``run(until=...)`` can return it.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class EmptySchedule(Exception):
    """Raised when ``step()`` is called but no events remain."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the interrupt happened.  Grid code
        uses this to distinguish e.g. preemption from cancellation.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt({self.cause!r})"
