"""Shared-resource primitives: counted resources and priority variants.

These follow the request/release event protocol: ``resource.request()``
returns an event that fires once the requesting process holds a slot.
Requests support the context-manager protocol so the common idiom is::

    with machine.request() as req:
        yield req
        yield env.timeout(service_time)
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional

from .errors import SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment


class Request(Event):
    """Event that fires when the resource grants a slot to the requester."""

    __slots__ = ("resource", "proc")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.proc = resource.env.active_process
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc_value: Any,
                 traceback: Any) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot (if held) or withdraw the queued request."""
        if not self.triggered:
            self.resource._withdraw(self)
        elif self.resource._is_user(self):
            self.resource.release(self)


class Release(Event):
    """Event that fires once the paired request's slot has been returned."""

    __slots__ = ("resource", "request")

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        resource._do_release(self)


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        #: FIFO wait queue.  A deque: grants always pop the head, which is
        #: O(n) on a list; ``remove`` (withdrawals) stays O(n) either way.
        self.queue: Deque[Request] = deque()

    # -- public API -----------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> Release:
        return Release(self, request)

    # -- internals --------------------------------------------------------
    def _is_user(self, request: Request) -> bool:
        return request in self.users

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _withdraw(self, request: Request) -> None:
        if request in self.queue:
            self.queue.remove(request)

    def _do_release(self, release: Release) -> None:
        try:
            self.users.remove(release.request)
        except ValueError:
            raise SimulationError("Cannot release a slot that is not held") from None
        release.succeed()
        self._grant_next()

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class PriorityRequest(Request):
    """Request carrying a priority (lower value is served first)."""

    __slots__ = ("priority", "time", "key")

    def __init__(self, resource: "PriorityResource", priority: int = 0) -> None:
        self.priority = priority
        self.time = resource.env.now
        self.key = (priority, self.time)
        super().__init__(resource)


class PriorityResource(Resource):
    """Resource whose wait queue is ordered by request priority, then FIFO."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._heap: List[tuple] = []
        self._seq = 0

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self._seq += 1
            heapq.heappush(self._heap, (request.key, self._seq, request))
            self.queue.append(request)

    def _withdraw(self, request: Request) -> None:
        super()._withdraw(request)
        self._heap = [item for item in self._heap if item[2] is not request]
        heapq.heapify(self._heap)

    def _grant_next(self) -> None:
        while self._heap and len(self.users) < self._capacity:
            _, _, nxt = heapq.heappop(self._heap)
            if nxt in self.queue:
                self.queue.remove(nxt)
            self.users.append(nxt)
            nxt.succeed()


class Container:
    """A homogeneous bulk resource (e.g. disk space, credits).

    ``put``/``get`` return events that fire once the amount has been
    deposited/withdrawn.  Gets are served FIFO as material becomes
    available.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self._capacity = capacity
        self._level = float(init)
        # FIFO wait queues (amount, event); deques for O(1) head pops.
        self._getters: Deque[tuple] = deque()
        self._putters: Deque[tuple] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("amount must be > 0")
        event = Event(self.env)
        self._putters.append((amount, event))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("amount must be > 0")
        event = Event(self.env)
        self._getters.append((amount, event))
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                amount, event = self._putters[0]
                if self._level + amount <= self._capacity:
                    self._level += amount
                    event.succeed(amount)
                    self._putters.popleft()
                    progress = True
            if self._getters:
                amount, event = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    event.succeed(amount)
                    self._getters.popleft()
                    progress = True
