"""Cancellable, re-armable timeout handles with lazy tombstone deletion.

The seed kernel offered only one-shot :class:`~repro.sim.events.Timeout`
events, so every timer-churn site (stream-buffer flush deadlines, sender
retry pacing, LRMS scheduling cycles, MDS refresh, fair-share sampling)
allocated a fresh event per tick — and the "timeout raced against a
wakeup" idiom (``yield timeout | kick``) additionally left a dead heap
entry *and* a dead condition behind on every cycle.

:class:`Timer` replaces that idiom.  One Timer object lives as long as
its owner and is re-armed in place:

* ``arm(delay)`` (re)sets the deadline to ``now + delay``;
* ``cancel()`` clears the deadline;
* when the deadline passes, the timer *fires*: its persistent
  ``callback`` (if any) runs first, then any one-shot waiters that
  yielded the timer, exactly like an event being processed.

Shot protocol (how this stays O(log n) amortised with zero heap surgery)
-----------------------------------------------------------------------
A *shot* is a heap entry ``(time, NORMAL, eid, timer)`` — the kernel's
promise to look at the timer at ``time``.  The timer remembers at most
one live shot (``_shot_eid``/``_shot_time``); arming only pushes a new
shot when no pending shot pops early enough.  When the kernel pops a
shot (:meth:`Timer._pop_shot`):

* ``eid != _shot_eid``  — the shot was superseded by an earlier re-arm:
  a pure **tombstone**; dropped without advancing the clock;
* deadline is ``None``  — cancelled; tombstone, dropped likewise;
* deadline is later     — the timer was lazily re-armed to a later
  time; the shot is **deferred**: one new shot is pushed at the real
  deadline (no clock advance);
* otherwise             — **fire**.

Consequences: re-arming to a later (or equal) deadline never adds a heap
entry; cancelling leaves at most one tombstone per cancel, collected in
O(log n) on pop, and a cancel immediately followed by a re-arm re-uses
the pending shot and leaves none.  Compare with the seed idiom, which
left one dead timeout per tick unconditionally.

Timers never fail and always fire with ``value`` (default ``None``).
Lanes never hold timers: shots always go on the heap, even for a
zero-delay arm, keeping the kernel's zero-delay fast path branch-free.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Optional, Tuple

from .events import Event, NORMAL, PENDING

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment


class Timer(Event):
    """A cancellable, re-armable timer event.

    Unlike plain events, a Timer may trigger many times: after it fires
    it can be armed again, and waiters may ``yield`` it anew.  The
    persistent ``callback`` (if given) runs on *every* firing.  Do not
    ``succeed``/``fail`` a Timer; use ``arm``/``cancel``.
    """

    __slots__ = ("_callback", "_fire_value", "_deadline", "_shot_eid",
                 "_shot_time", "name", "daemon")

    #: Pop-path discriminator read by the kernel (False on plain events).
    _is_timer = True

    def __init__(self, env: "Environment",
                 callback: Optional[Callable[["Timer"], None]] = None,
                 value: Any = None, name: Optional[str] = None,
                 daemon: bool = False) -> None:
        super().__init__(env)
        self._callback = callback
        self._fire_value = value
        #: Sim-time at which the timer should fire; ``None`` = disarmed.
        self._deadline: Optional[float] = None
        #: eid/pop-time of the single live pending shot (None = no shot).
        self._shot_eid: Optional[int] = None
        self._shot_time = 0.0
        self.name = name
        #: Daemon timers pace unbounded service loops and stay armed for
        #: the whole run (exempt from sanitizer pending-timer reports).
        self.daemon = daemon
        sanitizer = env.sanitizer
        if sanitizer is not None:
            sanitizer.track_timer(self)

    # -- state ----------------------------------------------------------
    @property
    def armed(self) -> bool:
        """True while a deadline is set and has not fired yet."""
        return self._deadline is not None

    @property
    def deadline(self) -> Optional[float]:
        """The pending fire time (``None`` when disarmed)."""
        return self._deadline

    # -- arming ----------------------------------------------------------
    def arm(self, delay: float, value: Any = PENDING) -> "Timer":
        """(Re-)arm to fire ``delay`` from now; returns self (yieldable).

        Arming an already-armed timer simply moves the deadline; arming a
        fired one resurrects it for another shot.  ``value`` optionally
        replaces the payload the timer fires with.
        """
        if delay < 0:
            raise ValueError(f"Negative delay {delay}")
        if value is not PENDING:
            self._fire_value = value
        env = self.env
        self._deadline = deadline = env._now + delay
        # Reset one-shot event state so the timer can fire (again).
        self._value = PENDING
        self._ok = True
        if self.callbacks is None:
            self.callbacks = []
        if self._shot_eid is not None and self._shot_time <= deadline:
            # A pending shot already pops at or before the new deadline;
            # _pop_shot will defer it to `deadline` then.  No new entry.
            return self
        env._eid = eid = env._eid + 1
        self._shot_eid = eid
        self._shot_time = deadline
        heappush(env._heap, (deadline, NORMAL, eid, self))
        return self

    restart = arm  # re-arm reads better as `timer.restart(delay)` at call sites

    def cancel(self) -> None:
        """Disarm.  A pending shot becomes a lazy tombstone (or is re-used
        by a subsequent :meth:`arm`)."""
        self._deadline = None

    # -- kernel pop path --------------------------------------------------
    def _pop_shot(self, entry: "Tuple[float, int, int, Event]") -> bool:
        """Handle a popped heap shot; return True iff the timer fired.

        Tombstone and deferral pops do **not** advance the simulation
        clock, so cancelled/re-armed shots are invisible to outcomes.
        """
        if entry[2] != self._shot_eid:
            return False  # superseded by an earlier re-arm: tombstone
        self._shot_eid = None
        deadline = self._deadline
        if deadline is None:
            return False  # cancelled: tombstone
        env = self.env
        popped_at = entry[0]
        if deadline > popped_at:
            # Lazily re-armed to a later time: defer with one fresh shot.
            env._eid = eid = env._eid + 1
            self._shot_eid = eid
            self._shot_time = deadline
            heappush(env._heap, (deadline, NORMAL, eid, self))
            return False
        # Fire: behave exactly like an event being processed.
        env._now = popped_at
        self._deadline = None
        self._value = self._fire_value
        callbacks, self.callbacks = self.callbacks, None
        callback = self._callback
        if callback is not None:
            callback(self)
        if callbacks:
            for cb in callbacks:
                cb(self)
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"armed@{self._deadline}" if self.armed else "disarmed"
        label = f" {self.name!r}" if self.name else ""
        return f"<Timer{label} {state} at {id(self):#x}>"
