"""Core event types for the discrete-event kernel.

The design follows the classic callback-event model (as popularised by
SimPy): an :class:`Event` is a one-shot promise living inside an
:class:`~repro.sim.environment.Environment`.  Processes yield events to
suspend themselves; when the event is *triggered* it is placed on the event
queue, and when the environment *processes* it every registered callback is
invoked exactly once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from .errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment

# Scheduling priorities: lower value == handled earlier at equal sim-time.
URGENT = 0
NORMAL = 1


class _Pending:
    """Sentinel for an event value that has not been set yet."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING: Any = _Pending()


class Event:
    """A one-shot occurrence that processes can wait for.

    Lifecycle: *untriggered* -> *triggered* (scheduled, value set) ->
    *processed* (callbacks ran).  ``succeed``/``fail`` trigger the event;
    both may be called at most once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks to run when the event is processed; ``None`` afterwards.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError(f"Value of {self!r} is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The payload the event was triggered with."""
        if self._value is PENDING:
            raise SimulationError(f"Value of {self!r} is not yet available")
        return self._value

    # -- failure bookkeeping -------------------------------------------
    @property
    def defused(self) -> bool:
        """True if a failure was acknowledged (prevents run() from raising)."""
        return self._defused

    def defuse(self) -> None:
        self._defused = True

    # -- triggering -----------------------------------------------------
    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another event (callback chaining)."""
        if self.triggered:
            # Same guard as succeed()/fail(): re-triggering would schedule
            # the event a second time and silently overwrite its value.
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    # -- combinators ----------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} object at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"Negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Timeout({self.delay}) object at {id(self):#x}>"


class Initialize(Event):
    """Starts a newly created :class:`~repro.sim.process.Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: Any) -> None:
        super().__init__(env)
        assert self.callbacks is not None
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class ConditionValue:
    """Ordered mapping of the events that fired inside a condition."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(str(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def keys(self) -> Iterable[Event]:
        return iter(self.events)

    def values(self) -> Iterable[Any]:
        return (e._value for e in self.events)

    def items(self) -> Iterable[tuple]:
        return ((e, e._value) for e in self.events)

    def todict(self) -> dict:
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a boolean combination of events (``&`` / ``|``)."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("Events from different environments cannot be mixed")

        # Check immediately if the condition already holds (e.g. all events
        # pre-triggered) -- but do so via an urgent event so that callbacks
        # still run within the loop.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self._events and not self.triggered:
            self.succeed(ConditionValue())

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None and event.triggered:
                value.events.append(event)

    def _build_value(self, event: Event) -> None:
        self._remove_check_callbacks()
        if event._ok:
            value = ConditionValue()
            self._populate_value(value)
            self._ok = True
            self._value = value
            self.env.schedule(self)

    def _remove_check_callbacks(self) -> None:
        for event in self._events:
            if event.callbacks is not None and self._check in event.callbacks:
                event.callbacks.remove(self._check)
            if isinstance(event, Condition):
                event._remove_check_callbacks()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok and not event._defused:
                # The condition's outcome is already decided, but a member
                # that lost the race may still fail afterwards (e.g. an
                # AnyOf whose winner was pre-triggered at construction, so
                # the loser kept this callback).  Acknowledge the failure,
                # otherwise Environment.step() re-raises it and crashes the
                # whole run.
                event.defuse()
            return
        self._count += 1
        if not event._ok:
            # Fail the condition with the same exception.
            event.defuse()
            self._remove_check_callbacks()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self._build_value(event)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition that fires once every given event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires as soon as any given event fires."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
