"""Core event types for the discrete-event kernel.

The design follows the classic callback-event model (as popularised by
SimPy): an :class:`Event` is a one-shot promise living inside an
:class:`~repro.sim.environment.Environment`.  Processes yield events to
suspend themselves; when the event is *triggered* it is placed on the event
queue, and when the environment *processes* it every registered callback is
invoked exactly once.

PERF note: ``succeed``/``fail``/``trigger`` and ``Timeout.__init__`` append
queue entries directly to the environment's zero-delay FIFO lane / heap
instead of going through :meth:`Environment.schedule`.  They observe the
scheduling invariants documented in ``sim/environment.py`` (bump ``_eid``,
lane entries carry ``time == env._now``); the resulting
``(time, priority, eid)`` total order is bit-for-bit the order the seed
kernel produced.
"""

from __future__ import annotations

from heapq import heappush
from typing import (TYPE_CHECKING, Any, Callable, Dict, Iterable, Iterator,
                    List, Optional)

from .errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment

# Scheduling priorities: lower value == handled earlier at equal sim-time.
URGENT = 0
NORMAL = 1


class _Pending:
    """Sentinel for an event value that has not been set yet."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING: Any = _Pending()


class Event:
    """A one-shot occurrence that processes can wait for.

    Lifecycle: *untriggered* -> *triggered* (scheduled, value set) ->
    *processed* (callbacks ran).  ``succeed``/``fail`` trigger the event;
    both may be called at most once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    #: Kernel pop-path discriminator; overridden by :class:`Timer`.
    _is_timer = False

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks to run when the event is processed; ``None`` afterwards.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._value is PENDING:
            raise SimulationError(f"Value of {self!r} is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The payload the event was triggered with."""
        if self._value is PENDING:
            raise SimulationError(f"Value of {self!r} is not yet available")
        return self._value

    # -- failure bookkeeping -------------------------------------------
    @property
    def defused(self) -> bool:
        """True if a failure was acknowledged (prevents run() from raising)."""
        # getattr: Timeout/Initialize never fail and skip initialising the
        # slot on their flattened construction path.
        return getattr(self, "_defused", False)

    def defuse(self) -> None:
        self._defused = True

    # -- triggering -----------------------------------------------------
    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another event (callback chaining)."""
        if self._value is not PENDING:
            # Same guard as succeed()/fail(): re-triggering would schedule
            # the event a second time and silently overwrite its value.
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        env = self.env
        env._eid = eid = env._eid + 1
        env._fifo.append((env._now, NORMAL, eid, self))

    def succeed(self, value: Any = None) -> "Event":
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid = eid = env._eid + 1
        env._fifo.append((env._now, NORMAL, eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        env = self.env
        # Failure is a cold path: the sanitizer hook lives here (and not
        # in succeed/trigger) so the happy path stays untouched.
        sanitizer = env.sanitizer
        if sanitizer is not None:
            sanitizer.note_failure(self)
        self._ok = False
        self._value = exception
        env._eid = eid = env._eid + 1
        env._fifo.append((env._now, NORMAL, eid, self))
        return self

    # -- combinators ----------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} object at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 *, _push: Any = heappush, _NORMAL: int = NORMAL) -> None:
        # PERF: flattened Event.__init__ + Environment.schedule — a Timeout
        # is born triggered, so both halves collapse to slot stores plus
        # one queue append (FIFO lane when zero-delay, heap otherwise).
        # ``_defused`` is intentionally left unset: it is only ever read
        # behind a ``not event._ok`` guard and a Timeout is always ok.
        # ``_push``/``_NORMAL`` are call-local bindings of module globals
        # (never pass them); the delay comparisons are fused so the common
        # positive-delay path costs a single float compare.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.delay = delay
        if delay > 0.0:
            env._eid = eid = env._eid + 1
            _push(env._heap, (env._now + delay, _NORMAL, eid, self))
        elif delay == 0.0:
            env._eid = eid = env._eid + 1
            env._fifo.append((env._now, _NORMAL, eid, self))
        else:
            # No eid was consumed: a rejected timeout must not perturb the
            # deterministic insertion-id sequence.
            raise ValueError(f"Negative delay {delay}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Timeout({self.delay}) object at {id(self):#x}>"


class Initialize(Event):
    """Starts a newly created :class:`~repro.sim.process.Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: Any) -> None:
        # PERF: flattened like Timeout; always zero-delay URGENT.
        # ``_defused`` left unset — only read behind ``not _ok`` (see
        # Timeout).
        self.env = env
        self.callbacks = [process]
        self._value = None
        self._ok = True
        env._eid = eid = env._eid + 1
        env._urgent.append((env._now, URGENT, eid, self))


class ConditionValue:
    """Ordered mapping of the events that fired inside a condition.

    Backed by the insertion-ordered ``events`` list (iteration order) plus
    an identity set for O(1) ``in``/``[]`` — the seed implementation
    scanned the list, making ``value[event]`` O(n) and a full readout of
    an n-way :class:`AllOf` O(n^2).
    """

    __slots__ = ("events", "_members")

    def __init__(self) -> None:
        self.events: List[Event] = []
        self._members: set = set()

    def add(self, event: Event) -> None:
        self.events.append(event)
        self._members.add(event)

    def __getitem__(self, key: Event) -> Any:
        if key not in self._members:
            raise KeyError(str(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self._members

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> "Iterator[Event]":
        return iter(self.events)

    def keys(self) -> Iterable[Event]:
        return iter(self.events)

    def values(self) -> Iterable[Any]:
        return (e._value for e in self.events)

    def items(self) -> Iterable[tuple]:
        return ((e, e._value) for e in self.events)

    def todict(self) -> dict:
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a boolean combination of events (``&`` / ``|``).

    Fan-in bookkeeping is O(1) per member event: the condition registers
    one ``_check`` callback per member and *leaves it in place* when the
    condition decides.  The seed kernel instead walked every member (and
    recursed into nested conditions) doing ``list.remove`` — quadratic
    when one event feeds many conditions (the paper's §4.3 pattern of one
    shadow fanning out to many Console Agents) and O(n) extra work on
    every wide ``AnyOf``.  A leftover ``_check`` on a decided condition
    is a single O(1) early-return when the member eventually fires; if
    the member *fails* after the condition is decided the failure is
    acknowledged (defused) — the same policy the kernel already applied
    to late losers of an ``AnyOf`` whose winner was pre-triggered.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        # One pass: validate the environment and register/immediately check
        # each member (pre-triggered members count right away).  PERF: the
        # seed made two passes; on a 500-wide fan-in the merged loop halves
        # the construction-time iteration count.
        check = self._check
        for event in self._events:
            if event.env is not env:
                raise ValueError("Events from different environments cannot be mixed")
            callbacks = event.callbacks
            if callbacks is None:
                check(event)
            else:
                callbacks.append(check)

        if not self._events and self._value is PENDING:
            self.succeed(ConditionValue())  # simlint: disable=trigger-in-init -- empty condition: scheduled, not processed; callbacks can still attach

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None and event._value is not PENDING:
                value.add(event)

    def _build_value(self, event: Event) -> None:
        if event._ok:
            value = ConditionValue()
            self._populate_value(value)
            self._ok = True
            self._value = value
            env = self.env
            env._eid = eid = env._eid + 1
            env._fifo.append((env._now, NORMAL, eid, self))

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            # The condition's outcome is already decided; this member lost
            # the race (its `_check` is intentionally left registered —
            # see the class docstring).  Acknowledge a late failure,
            # otherwise Environment.step() re-raises it and crashes the
            # whole run.  PERF: the ok-loser path (every member of a
            # decided fan-in firing later) is two slot loads and a
            # branch; the failure acknowledgement writes the slot
            # directly instead of paying a defuse() frame.
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            # Fail the condition with the same exception.
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self._build_value(event)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition that fires once every given event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires as soon as any given event fires."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
