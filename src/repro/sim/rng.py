"""Deterministic random-number streams.

Every stochastic component (network jitter, queue dispatch delay, randomized
resource selection, ...) draws from its *own named substream* derived from a
single root seed via :class:`numpy.random.SeedSequence`.  This keeps runs
reproducible and — crucially for the paper's comparisons — ensures that
changing one mechanism's randomness does not perturb another's.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


class RandomStreams:
    """Factory of named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._root = np.random.SeedSequence(self._seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The same (seed, name) pair always yields an identical stream,
        regardless of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from the root seed and a stable hash of the
            # name so that stream identity does not depend on call order
            # (blake2 is stable across runs, unlike Python's hash()).
            import hashlib

            digest = int.from_bytes(
                hashlib.blake2b(name.encode("utf-8"),
                                digest_size=8).digest(), "little")
            child = np.random.SeedSequence(
                entropy=self._seed,
                spawn_key=(digest & 0x7FFFFFFF,
                           (digest >> 31) & 0x7FFFFFFF))
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Derive an independent child factory (e.g. per experiment trial)."""
        gen = self.stream(f"spawn/{name}")
        return RandomStreams(int(gen.integers(0, 2**31 - 1)))

    # -- convenience draws used across the substrate --------------------
    def jitter(self, name: str, mean: float, rel_std: float = 0.1,
               floor: float = 0.0) -> float:
        """A positive, normally-jittered sample around ``mean``.

        Used for stage costs: ``mean`` comes from calibration, ``rel_std``
        is the coefficient of variation.  Values are clipped at ``floor``.
        """
        if mean <= 0:
            return max(mean, floor)
        sample = self.stream(name).normal(mean, rel_std * mean)
        return max(float(sample), floor)

    def exponential(self, name: str, mean: float) -> float:
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        return float(self.stream(name).uniform(low, high))

    def choice(self, name: str, options: Sequence[T]) -> T:
        """Uniformly pick one element (the paper's randomized selection)."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        idx = int(self.stream(name).integers(0, len(options)))
        return options[idx]

    def shuffled(self, name: str, options: Iterable[T]) -> List[T]:
        items = list(options)
        self.stream(name).shuffle(items)  # type: ignore[arg-type]
        return items
