"""The live control plane: HTTP endpoints, SSE streaming, dashboard.

Stdlib-only (``http.server`` + server-sent events): :class:`ControlPlaneServer`
wraps a :class:`repro.obs.control.SimController` and exposes

* ``GET /``          — the single-file HTML dashboard (``dashboard.html``);
* ``GET /health``    — liveness: sim clock, run state;
* ``GET /snapshot``  — full drain-point-consistent snapshot (telemetry +
  world status), the payload ``repro top --watch`` re-renders;
* ``GET /sites``     — per-site rows (free/running/queued/drained/up);
* ``GET /jobs``      — tracked jobs with their lifecycle stage;
* ``GET /events``    — SSE stream of periodic snapshots (``retry:`` hint,
  monotonically increasing ``id:``, ``event: snapshot`` frames, one
  final ``event: done``);
* ``POST /steer``    — execute one steering verb (JSON body
  ``{"verb": ..., <args>}``), answering with the verb's result.

Every read that touches simulation state goes through
``controller.call`` so it executes at the kernel's drain point — never
concurrently with an event callback.  The HTTP threads only ever hold
JSON-able copies.  G-Monitor (cs/0302007) is the shape being
reproduced: a thin web portal over a steerable broker.

The SSE framing helpers (:func:`format_sse`, :func:`snapshot_stream`)
are plain functions over bytes so tests can exercise framing without
sockets.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Iterator, Optional
from urllib.request import urlopen

from .control import SimController, SteerError

__all__ = [
    "ControlPlaneServer",
    "fetch_json",
    "fetch_snapshot",
    "format_sse",
    "snapshot_stream",
]

#: SSE reconnect hint sent on the first frame (milliseconds).
SSE_RETRY_MS = 2000

_DASHBOARD_PATH = os.path.join(os.path.dirname(__file__), "dashboard.html")


# -- SSE framing (pure, test-friendly) ------------------------------------

def format_sse(data: str, event: Optional[str] = None,
               event_id: Optional[int] = None,
               retry: Optional[int] = None) -> bytes:
    """One server-sent-event frame (multi-line data handled per spec)."""
    lines = []
    if retry is not None:
        lines.append(f"retry: {retry}")
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event is not None:
        lines.append(f"event: {event}")
    for chunk in data.split("\n"):
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def snapshot_stream(controller: SimController, interval: float,
                    stop: Optional[threading.Event] = None,
                    max_events: Optional[int] = None) -> Iterator[bytes]:
    """Yield SSE frames: periodic snapshots, then one ``done`` frame.

    The first frame carries the ``retry:`` reconnect hint; every frame
    carries a monotonically increasing ``id:`` so clients resume
    coherently.  Pacing uses ``Event.wait`` (never the wall clock API
    the determinism rules ban).  ``stop``/``max_events`` bound the
    stream for disconnecting clients and for tests.
    """
    stop = stop or threading.Event()
    next_id = 1
    while not stop.is_set():
        snap = controller.snapshot()
        yield format_sse(json.dumps(snap, sort_keys=True), event="snapshot",
                         event_id=next_id,
                         retry=SSE_RETRY_MS if next_id == 1 else None)
        if snap.get("finished"):
            yield format_sse("{}", event="done", event_id=next_id + 1)
            return
        next_id += 1
        if max_events is not None and next_id > max_events:
            return
        stop.wait(interval)


# -- HTTP client helpers (shared with `repro top --watch`) ----------------

def fetch_json(url: str, timeout: float = 10.0) -> Any:
    """GET a JSON document (stdlib urllib; no dependencies)."""
    with urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def fetch_snapshot(base_url: str, timeout: float = 10.0) -> Dict[str, Any]:
    """GET ``<base_url>/snapshot`` from a running control plane."""
    return fetch_json(base_url.rstrip("/") + "/snapshot", timeout=timeout)


# -- the server ------------------------------------------------------------

class ControlPlaneServer:
    """A threading HTTP server bound to one simulation controller.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` —
    what the CI smoke job does).  The server owns no simulation state;
    request threads translate HTTP to ``controller.call``/``steer``.
    """

    def __init__(self, controller: SimController, host: str = "127.0.0.1",
                 port: int = 0, interval: float = 1.0) -> None:
        self.controller = controller
        self.interval = interval
        self._stop = threading.Event()
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self.host, self.port = self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        try:
            self.httpd.serve_forever(poll_interval=0.2)
        finally:
            self._stop.set()

    def shutdown(self) -> None:
        self._stop.set()
        self.httpd.shutdown()
        self.httpd.server_close()


def _make_handler(server: "ControlPlaneServer"):
    controller = server.controller

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        # -- plumbing --------------------------------------------------
        def log_message(self, fmt: str, *args: Any) -> None:
            pass  # HTTP access noise never reaches the renders

        def _json(self, payload: Any, status: int = 200) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _guarded(self, fn: Callable[[], Any]) -> None:
            try:
                self._json(fn())
            except SteerError as exc:
                self._json({"error": str(exc)}, status=400)
            except (ValueError, KeyError) as exc:
                self._json({"error": str(exc)}, status=400)

        # -- GET ------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            try:
                self._route_get()
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-response; nothing to recover
            except SteerError as exc:
                self._json({"error": str(exc)}, status=503)

        def _route_get(self) -> None:
            path = self.path.split("?", 1)[0]
            if path == "/" or path == "/index.html":
                self._dashboard()
            elif path == "/health":
                env = controller.env
                self._json({"status": "ok", "time": env.now,
                            "running": not controller.finished,
                            "fired": len(controller.fired)})
            elif path == "/snapshot":
                self._json(controller.snapshot())
            elif path == "/sites":
                self._json(controller.call(_world_rows("site_rows")))
            elif path == "/jobs":
                self._json(controller.call(_world_rows("job_rows")))
            elif path == "/events":
                self._events()
            else:
                self._json({"error": f"no such endpoint {path!r}"},
                           status=404)

        def _dashboard(self) -> None:
            with open(_DASHBOARD_PATH, "rb") as fh:
                body = fh.read()
            self.send_response(200)
            self.send_header("Content-Type", "text/html; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _events(self) -> None:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            for frame in snapshot_stream(controller, server.interval,
                                         stop=server._stop):
                self.wfile.write(frame)
                self.wfile.flush()

        # -- POST -----------------------------------------------------
        def do_POST(self) -> None:  # noqa: N802 - http.server API
            try:
                self._route_post()
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-response; nothing to recover

        def _route_post(self) -> None:
            path = self.path.split("?", 1)[0]
            if path != "/steer":
                self._json({"error": f"no such endpoint {path!r}"},
                           status=404)
                return
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                doc = json.loads(raw.decode("utf-8"))
                verb = doc.pop("verb")
            except (ValueError, KeyError):
                self._json({"error": "body must be JSON with a 'verb' key"},
                           status=400)
                return
            self._guarded(lambda: {"verb": verb,
                                   "result": controller.steer(verb, **doc)})

    return Handler


def _world_rows(method: str) -> Callable[[SimController], Any]:
    def read(c: SimController) -> Any:
        if c.world is None:
            raise SteerError("no world bound to this controller")
        return getattr(c.world, method)()
    return read
