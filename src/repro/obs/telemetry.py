"""Sim-time metrics registry: counters, gauges, histograms, time series.

The paper's evaluation is read off continuous signals — queue depths
while the broker matches, spool backlogs while the reliable sender rides
out an outage, VM-slot occupancy under glide-in multiprogramming, free
nodes per LRMS — yet spans (:mod:`repro.obs.tracer`) only capture
*intervals*.  :class:`Telemetry` adds the missing time-series view.

Hook contract (mirrors ``env.tracer`` exactly):

* ``env.telemetry`` is ``None`` unless a registry is installed; the
  instrumented layers (core, streaming, multiprog, grid, net) read the
  attribute and skip everything when it is unset::

      t = self.env.telemetry
      if t is not None:
          t.gauge("broker.queue.batch").inc()

  so an uninstrumented run pays one attribute load per hook and
  allocates nothing.  The layers never import ``repro.obs`` (enforced
  by the ``obs-direct-import`` simlint rule).
* **Read-only**: recording a sample never creates events, consumes
  kernel eids, or draws from an RNG stream — installing telemetry is
  guaranteed not to change the simulation outcome, which is what keeps
  the golden renders byte-identical with telemetry on.  (The one
  exception is the *opt-in* sampling timer, see below.)
* **Bounded memory**: every :class:`TimeSeries` is capped at
  ``max_points`` via deterministic stride decimation (keep every 2nd
  retained point, double the stride), and histograms keep exact
  aggregates plus a bounded percentile window, so soaks cannot grow the
  registry unboundedly.

Sampling modes
--------------
The default is **on-change** recording: each gauge/counter update
appends a ``(sim_time, value)`` point (subject to decimation).  A
registry may additionally be given ``sample_interval=...`` to arm a
periodic sampling timer that snapshots every gauge on a fixed cadence —
useful for dashboards, but the timer consumes kernel event ids and so
*does* perturb the event interleaving; never enable it on a run whose
output must stay byte-identical to an untelemetered one.

Snapshots
---------
:meth:`Telemetry.snapshot` returns a JSON-able, deterministically
ordered dict; :func:`merge_snapshots` folds many snapshots (one per
runner cell, or one per environment built inside a cell) into one.
:func:`telemetry_scope` installs a factory on
:class:`~repro.sim.environment.Environment` so every environment built
inside the scope gets a registry automatically — the sharded runner uses
it to carry per-cell telemetry through its content-addressed cache.
"""

from __future__ import annotations

import math
from collections import deque
from contextlib import contextmanager
from typing import (TYPE_CHECKING, Any, Dict, Iterator, List, Optional,
                    Sequence, Tuple)

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileSketch",
    "Telemetry",
    "TimeSeries",
    "merge_snapshots",
    "scope_snapshot",
    "telemetry_scope",
]


class QuantileSketch:
    """An online, mergeable quantile summary with bounded memory.

    Values are counted into logarithmic buckets (DDSketch-style): bucket
    ``k`` holds values in ``(gamma**(k-1), gamma**k]`` with
    ``gamma = (1 + alpha) / (1 - alpha)``, so any reported quantile is
    within relative error ``alpha`` of a value whose *rank* is exact.
    Negative values go to a mirrored store and zeros to their own count,
    so the sketch covers the full real line.

    Compared to the P²/GK family, log buckets were chosen because the
    merge is *exact*: folding two sketches just adds bucket counts, so
    ``merge_snapshots`` produces identical percentiles no matter how a
    campaign was sharded — the property the runner's serial == parallel
    == cache-served contract needs.  Everything is deterministic: no
    randomness, no data-dependent restructuring beyond the (documented)
    low-bucket collapse at ``max_buckets``.
    """

    __slots__ = ("alpha", "gamma", "_ln_gamma", "max_buckets", "count",
                 "zeros", "total", "minimum", "maximum", "pos", "neg",
                 "collapsed")

    def __init__(self, alpha: float = 0.01, max_buckets: int = 4096) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if max_buckets < 8:
            raise ValueError("max_buckets must be >= 8")
        self.alpha = alpha
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self._ln_gamma = math.log(self.gamma)
        self.max_buckets = max_buckets
        self.count = 0
        self.zeros = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        #: bucket key -> count, for positive / negative magnitudes.
        self.pos: Dict[int, int] = {}
        self.neg: Dict[int, int] = {}
        #: How many low buckets were folded upward to respect max_buckets.
        self.collapsed = 0

    def _key(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._ln_gamma)

    def _value(self, key: int) -> float:
        # Representative of (gamma**(k-1), gamma**k]: gamma**k * (1-alpha),
        # which is within alpha relative error of every value in the bucket.
        return (self.gamma ** key) * (1.0 - self.alpha)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value > 0.0:
            key = self._key(value)
            self.pos[key] = self.pos.get(key, 0) + 1
        elif value < 0.0:
            key = self._key(-value)
            self.neg[key] = self.neg.get(key, 0) + 1
        else:
            self.zeros += 1
        if len(self.pos) + len(self.neg) > self.max_buckets:
            self._collapse()

    def _collapse(self) -> None:
        """Fold the lowest-magnitude bucket into its neighbour.

        Sacrifices accuracy near zero first (where absolute error is
        smallest), preserving the tail quantiles scale campaigns read.
        """
        store = self.pos if len(self.pos) >= len(self.neg) else self.neg
        keys = sorted(store)
        lowest = keys[0]
        store[keys[1]] = store.get(keys[1], 0) + store.pop(lowest)
        self.collapsed += 1

    def quantile(self, q: float) -> float:
        """The q-th percentile (``q`` in [0, 100]); NaN when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if self.count == 0:
            return float("nan")
        if q == 0.0:
            return self.minimum
        if q == 100.0:
            return self.maximum
        target = max(1, math.ceil(self.count * (q / 100.0)))
        cumulative = 0
        # Ascending value order: most-negative first (descending magnitude
        # keys in the mirrored store), then zeros, then positives.
        for key in sorted(self.neg, reverse=True):
            cumulative += self.neg[key]
            if cumulative >= target:
                return self._clamp(-self._value(key))
        cumulative += self.zeros
        if cumulative >= target:
            return 0.0
        for key in sorted(self.pos):
            cumulative += self.pos[key]
            if cumulative >= target:
                return self._clamp(self._value(key))
        return self.maximum  # pragma: no cover - fp-rounding fallback

    def _clamp(self, value: float) -> float:
        return min(max(value, self.minimum), self.maximum)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (exact: bucket counts add)."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with different alpha "
                f"({self.alpha} vs {other.alpha})")
        self.count += other.count
        self.zeros += other.zeros
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        for key, n in other.pos.items():
            self.pos[key] = self.pos.get(key, 0) + n
        for key, n in other.neg.items():
            self.neg[key] = self.neg.get(key, 0) + n
        self.collapsed += other.collapsed
        while len(self.pos) + len(self.neg) > self.max_buckets:
            self._collapse()
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able state (string bucket keys, sorted numerically)."""
        return {
            "alpha": self.alpha,
            "count": self.count,
            "zeros": self.zeros,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "collapsed": self.collapsed,
            "pos": {str(k): self.pos[k] for k in sorted(self.pos)},
            "neg": {str(k): self.neg[k] for k in sorted(self.neg)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any],
                  max_buckets: int = 4096) -> "QuantileSketch":
        sketch = cls(alpha=float(data["alpha"]), max_buckets=max_buckets)
        sketch.count = int(data["count"])
        sketch.zeros = int(data["zeros"])
        sketch.total = float(data["total"])
        sketch.minimum = (float(data["min"]) if data.get("min") is not None
                          else float("inf"))
        sketch.maximum = (float(data["max"]) if data.get("max") is not None
                          else float("-inf"))
        sketch.collapsed = int(data.get("collapsed", 0))
        sketch.pos = {int(k): int(n) for k, n in data.get("pos", {}).items()}
        sketch.neg = {int(k): int(n) for k, n in data.get("neg", {}).items()}
        return sketch

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<QuantileSketch n={self.count} alpha={self.alpha} "
                f"buckets={len(self.pos) + len(self.neg)}>")


class TimeSeries:
    """A bounded ``(sim_time, value)`` sequence with stride decimation.

    Offered points are recorded every ``stride``-th time; when the
    retained list reaches ``max_points`` it is thinned to every 2nd
    point and the stride doubles.  The retained set is a pure function
    of the offered sequence, so two identical runs produce identical
    series regardless of how long they are.
    """

    __slots__ = ("name", "max_points", "points", "stride", "offered")

    def __init__(self, name: str, max_points: int = 1024) -> None:
        if max_points < 2:
            raise ValueError("max_points must be >= 2")
        self.name = name
        self.max_points = max_points
        self.points: List[Tuple[float, float]] = []
        self.stride = 1
        self.offered = 0

    def record(self, time: float, value: float) -> None:
        take = self.offered % self.stride == 0
        self.offered += 1
        if not take:
            return
        self.points.append((time, value))
        if len(self.points) >= self.max_points:
            del self.points[1::2]  # keep every 2nd point (0, 2, 4, ...)
            self.stride *= 2

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def to_list(self) -> List[List[float]]:
        return [[t, v] for t, v in self.points]

    def __len__(self) -> int:
        return len(self.points)


class Counter:
    """A monotonically increasing count (float-valued: CPU-seconds etc.)."""

    __slots__ = ("name", "value", "_telemetry", "_series")

    def __init__(self, name: str, telemetry: "Telemetry",
                 series: Optional[TimeSeries] = None) -> None:
        self.name = name
        self.value: float = 0.0
        self._telemetry = telemetry
        self._series = series

    def inc(self, n: float = 1.0) -> None:
        self.value += n
        if self._series is not None:
            self._series.record(self._telemetry.env.now, self.value)


class Gauge:
    """A point-in-time level (queue depth, backlog bytes, busy slots)."""

    __slots__ = ("name", "value", "minimum", "maximum", "updates",
                 "_telemetry", "_series")

    def __init__(self, name: str, telemetry: "Telemetry",
                 series: Optional[TimeSeries] = None) -> None:
        self.name = name
        self.value: float = 0.0
        self.minimum: float = 0.0
        self.maximum: float = 0.0
        self.updates = 0
        self._telemetry = telemetry
        self._series = series

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if self._series is not None:
            self._series.record(self._telemetry.env.now, value)

    def inc(self, n: float = 1.0) -> None:
        self.set(self.value + n)

    def dec(self, n: float = 1.0) -> None:
        self.set(self.value - n)

    def sample(self) -> None:
        """Append the current level to the series without changing it."""
        if self._series is not None:
            self._series.record(self._telemetry.env.now, self.value)


class Histogram:
    """Exact aggregates of observed values plus bounded percentile state.

    Percentiles are *exact* (interpolated over the retained window) while
    every observation still fits in the window, and come from the
    :class:`QuantileSketch` once the stream outgrows it — so a
    million-job campaign reports tail latencies with bounded memory and
    a guaranteed relative-error bound instead of window-truncated ones.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "_window",
                 "_sketch")

    def __init__(self, name: str, window: int = 1024) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        # -inf, not 0.0: an all-negative stream must report its true
        # (negative) maximum, not a phantom 0.0 (to_dict guards on count).
        self.maximum = float("-inf")
        self._window: deque = deque(maxlen=window)
        self._sketch = QuantileSketch()

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._window.append(value)
        self._sketch.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def sketch(self) -> QuantileSketch:
        """The mergeable quantile summary of *every* observation."""
        return self._sketch

    def percentile(self, q: float) -> float:
        if not self._window:
            return float("nan")
        if self.count > len(self._window):
            # The window no longer holds the full stream: answer from the
            # sketch, which has seen every observation.
            return self._sketch.quantile(q)
        ordered = sorted(self._window)
        idx = (len(ordered) - 1) * (q / 100.0)
        lo = int(idx)
        hi = min(lo + 1, len(ordered) - 1)
        frac = idx - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean if self.count else None,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "p50": self.percentile(50) if self.count else None,
            "p95": self.percentile(95) if self.count else None,
            "sketch": self._sketch.to_dict() if self.count else None,
        }


class Telemetry:
    """The per-environment metrics registry (the ``env.telemetry`` hook).

    Install with ``Telemetry(env).install()``; metric objects are created
    lazily by name on first use and are stable thereafter::

        t = Telemetry(env).install()
        ... run ...
        snap = t.snapshot()
    """

    def __init__(self, env: "Environment", *, series: bool = True,
                 max_points: int = 1024, window: int = 1024,
                 sample_interval: Optional[float] = None) -> None:
        self.env = env
        self.enabled = True
        self.record_series = series
        self.max_points = max_points
        self.window = window
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: Sampling cadence of the (opt-in) periodic gauge sampler.  When
        #: set, the registry arms a daemon timer — which consumes kernel
        #: event ids and therefore perturbs the deterministic event
        #: interleaving.  Leave unset for byte-identical runs.
        self.sample_interval = sample_interval
        self._sample_timer: Optional[Any] = None
        if sample_interval is not None:
            self.start_sampling(sample_interval)

    # -- installation ----------------------------------------------------
    def install(self) -> "Telemetry":
        """Attach this registry to its environment's hook point."""
        self.env.telemetry = self
        return self

    def uninstall(self) -> None:
        if getattr(self.env, "telemetry", None) is self:
            self.env.telemetry = None

    # -- metric factories ------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            series = (TimeSeries(name, self.max_points)
                      if self.record_series else None)
            metric = self.counters[name] = Counter(name, self, series)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            series = (TimeSeries(name, self.max_points)
                      if self.record_series else None)
            metric = self.gauges[name] = Gauge(name, self, series)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name, self.window)
        return metric

    # -- opt-in periodic sampling ---------------------------------------
    def start_sampling(self, interval: float) -> None:
        """Arm the periodic gauge sampler (NOT byte-identical safe)."""
        if interval <= 0:
            raise ValueError("sample_interval must be > 0")
        self.sample_interval = interval
        if self._sample_timer is None:
            self._sample_timer = self.env.timer(
                callback=self._on_sample, name="telemetry/sampler",
                daemon=True)
        self._sample_timer.arm(interval)

    def stop_sampling(self) -> None:
        if self._sample_timer is not None:
            self._sample_timer.cancel()

    def _on_sample(self, _timer: Any) -> None:
        for name in sorted(self.gauges):
            self.gauges[name].sample()
        if self.sample_interval is not None:
            _timer.arm(self.sample_interval)

    # -- snapshots -------------------------------------------------------
    def series(self) -> Dict[str, TimeSeries]:
        """Every live series (counters + gauges), sorted by metric name."""
        out: Dict[str, TimeSeries] = {}
        for name in sorted(self.counters):
            s = self.counters[name]._series
            if s is not None and s.points:
                out[name] = s
        for name in sorted(self.gauges):
            s = self.gauges[name]._series
            if s is not None and s.points:
                out[name] = s
        return out

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able, deterministically ordered state of every metric."""
        return {
            "counters": {name: self.counters[name].value
                         for name in sorted(self.counters)},
            "gauges": {name: {
                "last": self.gauges[name].value,
                "min": self.gauges[name].minimum,
                "max": self.gauges[name].maximum,
                "updates": self.gauges[name].updates,
            } for name in sorted(self.gauges)},
            "histograms": {name: self.histograms[name].to_dict()
                           for name in sorted(self.histograms)},
            "series": {name: ts.to_list()
                       for name, ts in self.series().items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Telemetry counters={len(self.counters)} "
                f"gauges={len(self.gauges)} "
                f"histograms={len(self.histograms)}>")


# -- snapshot algebra ----------------------------------------------------
def _empty_snapshot() -> Dict[str, Any]:
    return {"counters": {}, "gauges": {}, "histograms": {}, "series": {}}


def merge_snapshots(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold snapshots (in the given order) into one aggregate snapshot.

    * counters sum;
    * gauges keep the *last* observed level plus global min/max and the
      summed update count;
    * histograms keep exact count/total/min/max (and the recomputed
      mean); their :class:`QuantileSketch` states merge *exactly*
      (bucket counts add), so merged ``p50``/``p95`` are real values —
      they only come back as ``None`` when a legacy snapshot in the fold
      carries no sketch state;
    * series are concatenated in fold order (times may restart between
      segments — each segment is one independent cell/environment).

    The fold is order-dependent by design: callers pass snapshots in
    canonical plan order, so serial, parallel, and cache-served runs
    merge identically.
    """
    merged = _empty_snapshot()
    counters: Dict[str, float] = merged["counters"]
    gauges: Dict[str, Dict[str, Any]] = merged["gauges"]
    histograms: Dict[str, Dict[str, Any]] = merged["histograms"]
    series: Dict[str, List[List[float]]] = merged["series"]
    #: name -> merged sketch, or None once any contributing snapshot
    #: lacked sketch state (legacy) — those keep ``None`` percentiles.
    sketches: Dict[str, Optional[QuantileSketch]] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, g in snap.get("gauges", {}).items():
            agg = gauges.get(name)
            if agg is None:
                gauges[name] = dict(g)
            else:
                agg["last"] = g["last"]
                agg["min"] = min(agg["min"], g["min"])
                agg["max"] = max(agg["max"], g["max"])
                agg["updates"] += g["updates"]
        for name, h in snap.get("histograms", {}).items():
            agg = histograms.get(name)
            if agg is None:
                histograms[name] = {
                    "count": h["count"], "total": h["total"],
                    "mean": h["mean"], "min": h["min"], "max": h["max"],
                    "p50": None, "p95": None,
                }
                if h["count"] and h.get("sketch") is not None:
                    sketches[name] = QuantileSketch.from_dict(h["sketch"])
                elif h["count"]:
                    sketches[name] = None  # legacy snapshot: no sketch
            else:
                agg["count"] += h["count"]
                agg["total"] += h["total"]
                if h["min"] is not None:
                    agg["min"] = (h["min"] if agg["min"] is None
                                  else min(agg["min"], h["min"]))
                if h["max"] is not None:
                    agg["max"] = (h["max"] if agg["max"] is None
                                  else max(agg["max"], h["max"]))
                agg["mean"] = (agg["total"] / agg["count"]
                               if agg["count"] else None)
                if h["count"]:
                    sketch = sketches.get(name)
                    if h.get("sketch") is None:
                        sketches[name] = None  # poisoned: stay mergeable-not
                    elif name not in sketches:
                        sketches[name] = QuantileSketch.from_dict(h["sketch"])
                    elif sketch is not None:
                        sketch.merge(QuantileSketch.from_dict(h["sketch"]))
        for name, points in snap.get("series", {}).items():
            series.setdefault(name, []).extend(
                [list(p) for p in points])
    # Quantiles of the merged stream, from the exactly-merged sketches.
    for name, sketch in sketches.items():
        if sketch is not None and sketch.count:
            agg = histograms[name]
            agg["p50"] = sketch.quantile(50)
            agg["p95"] = sketch.quantile(95)
            agg["sketch"] = sketch.to_dict()
    # Deterministic key order regardless of fold interleaving.
    merged["counters"] = {k: counters[k] for k in sorted(counters)}
    merged["gauges"] = {k: gauges[k] for k in sorted(gauges)}
    merged["histograms"] = {k: histograms[k] for k in sorted(histograms)}
    merged["series"] = {k: series[k] for k in sorted(series)}
    return merged


@contextmanager
def telemetry_scope(**kwargs: Any) -> Iterator[List[Telemetry]]:
    """Auto-install a registry on every Environment built in this scope.

    Yields the (initially empty) list of registries, appended in
    environment-construction order — deterministic for a deterministic
    build.  Used by the sharded runner so experiment cells need no
    telemetry plumbing of their own::

        with telemetry_scope() as registries:
            payload = spec.run_cell(config, key)
        snapshot = merge_snapshots([t.snapshot() for t in registries])
    """
    from ..sim.environment import Environment

    created: List[Telemetry] = []

    def factory(env: "Environment") -> Telemetry:
        telemetry = Telemetry(env, **kwargs)
        created.append(telemetry)
        return telemetry

    previous = Environment.telemetry_factory
    Environment.telemetry_factory = factory  # simlint: disable=flow-worker-purity -- restored in finally; the write is scoped to this worker's own cell, never leaks across cells
    try:
        yield created
    finally:
        Environment.telemetry_factory = previous  # simlint: disable=flow-worker-purity -- restores the pre-scope factory (cell-local by construction)


def scope_snapshot(registries: Sequence[Telemetry]) -> Dict[str, Any]:
    """Merge the registries collected by one :func:`telemetry_scope`."""
    return merge_snapshots([t.snapshot() for t in registries])
