"""Chrome/Perfetto ``trace_event`` export: spans + counter tracks in one file.

The Trace Event Format (the JSON flavour understood by ``chrome://tracing``
and `ui.perfetto.dev <https://ui.perfetto.dev>`_) is the lingua franca for
timeline visualisation.  :func:`chrome_trace` merges the two observability
sources of this project into one event list:

* :class:`~repro.obs.tracer.Tracer` spans become ``"X"`` (complete)
  events — one named slice per span, grouped into one *thread track per
  job* (tids assigned in first-appearance order, so the file is
  deterministic) with job-less spans on a shared ``(global)`` track;
* tracer ring-buffer events become ``"i"`` (instant) marks on the track
  of their job, or the global track when unattributed;
* :class:`~repro.obs.telemetry.Telemetry` time series become ``"C"``
  (counter) tracks — queue depths, backlog bytes, slot occupancy render
  as the stacked area charts the paper's Figs. 6-8 are made of.

Timestamps: the format wants microseconds.  Simulation time is seconds,
so ``ts = sim_time * 1e6`` — one simulated second reads as one second on
the Perfetto timeline.  Zero-duration spans are clamped to ``dur >= 1``
(Perfetto drops 0-width slices entirely).

The exporter is read-only over its inputs and pure over its output: the
same tracer/telemetry state always serialises to the same JSON bytes.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .telemetry import Telemetry
    from .tracer import Tracer

__all__ = ["chrome_trace", "export_chrome_trace"]

#: pid of the span/instant timeline (one "process" per trace source).
SPAN_PID = 1
#: pid of the telemetry counter tracks.
COUNTER_PID = 2
#: tid of the shared track for job-less spans/instants.
GLOBAL_TID = 0
#: tid of the dedicated steering track (``steer:*`` ring events land
#: here so chaos campaigns read as one row of instants).
STEER_TID = -1

_US = 1_000_000.0  # sim-seconds -> trace microseconds


def _span_args(span: Any) -> Dict[str, Any]:
    args: Dict[str, Any] = {}
    if span.site is not None:
        args["site"] = span.site
    if span.status != "ok":
        args["status"] = span.status
    if span.meta:
        for key in sorted(span.meta):
            args[key] = span.meta[key]
    return args


def chrome_trace(tracer: Optional["Tracer"] = None,
                 telemetry: Optional["Telemetry"] = None,
                 snapshot: Optional[Mapping[str, Any]] = None,
                 ) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document (a JSON-ready dict).

    Any combination of sources may be given: ``tracer`` contributes span
    and instant tracks, ``telemetry`` (a live registry) or ``snapshot``
    (a :meth:`Telemetry.snapshot` dict, e.g. out of the runner cache)
    contributes counter tracks.  Returns
    ``{"traceEvents": [...], "displayTimeUnit": "ms"}``.
    """
    events: List[Dict[str, Any]] = []

    # -- process metadata (named tracks group nicely in the Perfetto UI).
    if tracer is not None:
        events.append({"ph": "M", "pid": SPAN_PID, "tid": GLOBAL_TID,
                       "name": "process_name",
                       "args": {"name": "job lifecycle (spans)"}})
        events.append({"ph": "M", "pid": SPAN_PID, "tid": GLOBAL_TID,
                       "name": "thread_name", "args": {"name": "(global)"}})

        # Deterministic job -> tid mapping: first appearance over the
        # retained spans (end order), then over ring events.
        tids: Dict[str, int] = {}

        def tid_of(job: Optional[str]) -> int:
            if job is None:
                return GLOBAL_TID
            tid = tids.get(job)
            if tid is None:
                tid = tids[job] = len(tids) + 1
                events.append({"ph": "M", "pid": SPAN_PID, "tid": tid,
                               "name": "thread_name", "args": {"name": job}})
            return tid

        for span in tracer.spans:
            if span.end is None:  # still open: not representable as "X"
                continue
            dur = (span.end - span.start) * _US
            events.append({
                "ph": "X", "pid": SPAN_PID, "tid": tid_of(span.job),
                "name": span.name, "cat": "span",
                "ts": span.start * _US, "dur": dur if dur >= 1.0 else 1.0,
                "args": _span_args(span),
            })
        steer_track_named = False
        for ring in tracer.events:
            data = ring.data
            job = data.get("job")
            args = {key: data[key] for key in sorted(data)}
            if ring.kind.startswith("steer:"):
                # Steering verbs get their own row: a chaos campaign
                # reads as one line of instants above the job tracks.
                if not steer_track_named:
                    steer_track_named = True
                    events.append({"ph": "M", "pid": SPAN_PID,
                                   "tid": STEER_TID, "name": "thread_name",
                                   "args": {"name": "(steering)"}})
                tid = STEER_TID
            else:
                tid = tid_of(job if isinstance(job, str) else None)
            events.append({
                "ph": "i", "pid": SPAN_PID, "tid": tid,
                "name": ring.kind, "cat": "event", "s": "t",
                "ts": ring.time * _US, "args": args,
            })

    # -- counter tracks from telemetry series.
    series: Mapping[str, Any] = {}
    if telemetry is not None:
        snapshot = telemetry.snapshot()
    if snapshot is not None:
        series = snapshot.get("series", {})
    if series:
        events.append({"ph": "M", "pid": COUNTER_PID, "tid": GLOBAL_TID,
                       "name": "process_name",
                       "args": {"name": "telemetry (counters)"}})
        for name in sorted(series):
            for time, value in series[name]:
                events.append({
                    "ph": "C", "pid": COUNTER_PID, "tid": GLOBAL_TID,
                    "name": name, "cat": "telemetry",
                    "ts": time * _US, "args": {"value": value},
                })

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(path: str,
                        tracer: Optional["Tracer"] = None,
                        telemetry: Optional["Telemetry"] = None,
                        snapshot: Optional[Mapping[str, Any]] = None,
                        ) -> int:
    """Serialise :func:`chrome_trace` to ``path``; returns the event count.

    The document is written with sorted keys and no whitespace variance,
    so identical observability state produces byte-identical files.
    """
    doc = chrome_trace(tracer=tracer, telemetry=telemetry, snapshot=snapshot)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return len(doc["traceEvents"])
