"""The sim-loop bridge: thread-safe steering and scripted chaos.

``repro serve`` runs a simulation on a background thread while an HTTP
server answers from the foreground — but the kernel is single-threaded
and its determinism contract forbids touching simulation state from
another thread.  :class:`SimController` is the bridge: it installs on
the ``Environment.control`` hook (mirroring ``env.tracer`` /
``env.telemetry``), and the kernel's controlled run loop calls
:meth:`SimController.drain` once **between** event pops.  Everything the
outside world wants to do — steer the grid, snapshot telemetry, pause
the clock — is packaged as a closure, queued thread-safely, and executed
at that drain point:

* commands never run mid-callback, so telemetry snapshots taken through
  :meth:`call` are always internally consistent (a histogram's count and
  sketch can never be observed half-updated);
* commands execute at a well-defined position of the event order, so a
  *scripted* command stream — a :class:`ChaosSchedule` — replays
  deterministically: same schedule + same seed = byte-identical run;
* an **idle** controller (no commands queued, no schedule, no pacing)
  returns from ``drain()`` after one attribute check without consuming
  event ids or touching state, so an attached-but-idle server leaves
  every golden render byte-identical.

Steering verbs
--------------
Clock verbs are handled by the controller itself: ``pause``, ``resume``,
``step`` (run N more events, then hold again), ``set_rate`` (sim-seconds
per wall-second; 0 = free-run).  World verbs — ``inject``, ``kill``,
``drain_site``, ``undrain_site``, ``fail_site``, ``recover_site`` — are
delegated to the bound world adapter
(:class:`repro.core.steering.SteeringAdapter`, attached by
``Scenario.build()`` whenever a controller is present).  ``repro.obs``
stays isolated: the adapter is *handed in*, never imported.

Chaos schedules
---------------
A :class:`ChaosSchedule` is a list of ``(at, verb, args)`` actions
(see ``docs/chaos-schedules.md`` for the JSON format).  At each drain
the controller fires every action whose time has come — i.e. the next
scheduled event is at or past ``at`` (or the queue is empty), in which
case the clock legally jumps forward via ``env.advance_to`` — so a
regional outage at t=90 lands at the same position of the event order
every single run.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from contextlib import contextmanager
from time import perf_counter
from typing import (TYPE_CHECKING, Any, Callable, Deque, Dict, Iterator,
                    List, Mapping, Optional, Sequence, Tuple)

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment

__all__ = [
    "CLOCK_VERBS",
    "WORLD_VERBS",
    "ChaosAction",
    "ChaosSchedule",
    "SimController",
    "SteerError",
    "control_scope",
]

#: Verbs the controller executes itself (no world adapter required).
CLOCK_VERBS: Tuple[str, ...] = ("pause", "resume", "step", "set_rate")

#: Verbs delegated to the bound world adapter (Scenario-built worlds).
WORLD_VERBS: Tuple[str, ...] = (
    "inject", "kill", "drain_site", "undrain_site", "fail_site",
    "recover_site",
)


class SteerError(ValueError):
    """A steering verb was malformed or could not be applied."""


class ChaosAction:
    """One scripted steering verb at a fixed simulation time."""

    __slots__ = ("at", "verb", "args")

    def __init__(self, at: float, verb: str,
                 args: Optional[Mapping[str, Any]] = None) -> None:
        if at < 0:
            raise SteerError(f"action time must be >= 0, got {at}")
        if verb not in CLOCK_VERBS and verb not in WORLD_VERBS:
            raise SteerError(
                f"unknown steering verb {verb!r}; choose from "
                f"{', '.join(CLOCK_VERBS + WORLD_VERBS)}")
        self.at = float(at)
        self.verb = verb
        self.args: Dict[str, Any] = dict(args or {})

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"at": self.at, "verb": self.verb}
        for key in sorted(self.args):
            out[key] = self.args[key]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ChaosAction {self.verb}@{self.at:.6g} {self.args!r}>"


class ChaosSchedule:
    """An ordered, validated list of :class:`ChaosAction`.

    Actions are sorted by ``(at, original index)`` — a stable order, so
    two verbs at the same time fire in file order.  The schedule object
    itself is immutable state shared across controllers; each controller
    keeps its own cursor.
    """

    def __init__(self, actions: Sequence[ChaosAction],
                 description: str = "") -> None:
        indexed = list(enumerate(actions))
        indexed.sort(key=lambda pair: (pair[1].at, pair[0]))
        self.actions: Tuple[ChaosAction, ...] = tuple(
            action for _, action in indexed)
        self.description = description

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosSchedule":
        version = data.get("version", 1)
        if version != 1:
            raise SteerError(f"unsupported chaos schedule version {version!r}")
        actions = []
        for i, raw in enumerate(data.get("actions", [])):
            if "at" not in raw or "verb" not in raw:
                raise SteerError(
                    f"action #{i} needs 'at' and 'verb' fields: {raw!r}")
            args = {k: v for k, v in raw.items() if k not in ("at", "verb")}
            actions.append(ChaosAction(raw["at"], raw["verb"], args))
        return cls(actions, description=str(data.get("description", "")))

    @classmethod
    def load(cls, path: str) -> "ChaosSchedule":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "description": self.description,
            "actions": [action.to_dict() for action in self.actions],
        }

    def __len__(self) -> int:
        return len(self.actions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ChaosSchedule {len(self.actions)} actions>"


class _Command:
    """One queued closure plus its completion box."""

    __slots__ = ("fn", "done", "result", "error")

    def __init__(self, fn: Callable[["SimController"], Any]) -> None:
        self.fn = fn
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[Exception] = None


class SimController:
    """The ``env.control`` hook: command queue, chaos cursor, clock gate.

    Created by :func:`control_scope` (one per environment built inside
    the scope) or installed manually with ``SimController(env).install()``.
    Thread contract: :meth:`drain` runs on the simulation thread only;
    :meth:`call` / :meth:`steer` / :meth:`snapshot` may be called from
    any thread; :meth:`finish` must be called (once) by the owner of the
    simulation thread after ``env.run()`` returns.
    """

    def __init__(self, env: "Environment",
                 schedule: Optional[ChaosSchedule] = None,
                 rate: float = 0.0) -> None:
        self.env = env
        #: The bound world adapter (None until ``Scenario.build`` attaches
        #: one); world verbs raise :class:`SteerError` while unbound.
        self.world: Optional[Any] = None
        #: True once the owner declared the run over (see :meth:`finish`).
        self.finished = False
        #: Deterministic log of every applied verb (scheduled or steered):
        #: ``{"at": sim_time, "verb": ..., "source": "chaos" | "steer"}``.
        self.fired: List[Dict[str, Any]] = []
        self._actions: Tuple[ChaosAction, ...] = (
            schedule.actions if schedule is not None else ())
        self._cursor = 0
        self._cv = threading.Condition()
        self._commands: Deque[_Command] = deque()
        self._paused = False
        self._step_budget = 0
        self._rate = float(rate)
        self._anchor: Optional[Tuple[float, float]] = None
        # True while the kernel's controlled loop is live (maintained by
        # begin_run/end_run under the condition lock).  Decides whether
        # call() must queue for the drain point or may execute inline.
        self._running = False
        # Fast-path flag: drain() is a no-op while False.  Maintained
        # under the GIL (plain bool read/write), set by producers on
        # enqueue and recomputed after every full drain.
        self._busy = bool(self._actions) or bool(self._rate)

    # -- installation (simulation thread) --------------------------------
    def install(self) -> "SimController":
        """Attach this controller to its environment's hook point."""
        self.env.control = self
        return self

    def bind_world(self, adapter: Any) -> None:
        """Attach the steering adapter world verbs delegate to."""
        self.world = adapter

    # -- run boundaries (called by Environment._run_controlled) ----------
    def begin_run(self) -> None:
        with self._cv:
            self._running = True

    def end_run(self) -> None:
        """The controlled loop exited: release queued callers inline.

        Runs on the simulation thread with the loop stopped, which is
        drain-point-equivalent — commands may execute safely.
        """
        with self._cv:
            self._running = False
            pending = list(self._commands)
            self._commands.clear()
        for cmd in pending:
            self._execute(cmd)

    # -- the kernel-facing drain point (simulation thread) ---------------
    def drain(self) -> None:
        """Run due commands/chaos verbs; hold or pace the clock if asked.

        Called by ``Environment._run_controlled`` between event pops.
        MUST stay cheap when idle: one attribute check.
        """
        if not self._busy:
            return
        if self._commands:
            self._run_commands()
        if self._cursor < len(self._actions):
            self._fire_due()
        if self._paused and not self.finished:
            self._hold()
        elif self._rate and not self.finished:
            self._pace()
        self._busy = (bool(self._commands)
                      or self._cursor < len(self._actions)
                      or self._paused or bool(self._rate))

    def _run_commands(self) -> None:
        while True:
            with self._cv:
                if not self._commands:
                    return
                cmd = self._commands.popleft()
            self._execute(cmd)

    def _execute(self, cmd: _Command) -> None:
        try:
            cmd.result = cmd.fn(self)
        except Exception as exc:  # noqa: BLE001 - transported to the calling thread and re-raised by call()
            cmd.error = exc
        cmd.done.set()

    def _fire_due(self) -> None:
        """Fire every scheduled action whose time has come.

        An action is due when the next scheduled event is at or past its
        ``at`` (the clock may then legally jump to ``at``), including
        when the queue is empty.  Fired verbs may schedule new events
        (inject) — the loop re-peeks each iteration.
        """
        env = self.env
        actions = self._actions
        while self._cursor < len(actions):
            action = actions[self._cursor]
            if env.peek() < action.at:
                return  # an earlier event must be processed first
            self._cursor += 1
            env.advance_to(action.at)
            self.apply(action.verb, action.args, source="chaos")

    def _hold(self) -> None:
        """Block the simulation thread while paused, servicing commands.

        ``resume``/``step`` arrive *as commands*, so the wait loop keeps
        draining the queue; wall-clock waits never touch sim state.
        """
        while True:
            with self._cv:
                if not self._paused or self.finished:
                    return
                if self._step_budget > 0:
                    self._step_budget -= 1
                    return  # admit one event, then hold again
                if not self._commands:
                    self._cv.wait(0.05)
                    continue
                cmd = self._commands.popleft()
            self._execute(cmd)

    def _pace(self) -> None:
        """Slow the run to ``rate`` sim-seconds per wall-second."""
        nxt = self.env.peek()
        if nxt == float("inf"):
            return
        while True:
            rate = self._rate
            if not rate or self._paused or self.finished:
                return
            if self._anchor is None:
                self._anchor = (perf_counter(), self.env.now)
            wall0, sim0 = self._anchor
            deadline = wall0 + (nxt - sim0) / rate
            now = perf_counter()
            if now >= deadline:
                return
            with self._cv:
                if not self._commands:
                    self._cv.wait(min(deadline - now, 0.25))
                    continue
                cmd = self._commands.popleft()
            self._execute(cmd)

    # -- verb dispatch (simulation thread, via drain) ---------------------
    def apply(self, verb: str, args: Optional[Mapping[str, Any]] = None,
              source: str = "steer") -> Any:
        """Execute one steering verb *at the drain point*.

        Do not call from another thread — route through :meth:`steer`.
        Successful verbs are recorded in :attr:`fired` and emitted as
        ``steer:<verb>`` tracer ring events (Perfetto shows them as
        instants on the steering track); failed verbs leave no record.
        """
        args = dict(args or {})
        result = self._apply(verb, args)
        self.fired.append({"at": self.env.now, "verb": verb,
                           "source": source})
        tr = self.env.tracer
        if tr is not None:
            tr.event(f"steer:{verb}", source=source, **args)
            tr.count(f"steer.{verb}")
        return result

    def _apply(self, verb: str, args: Dict[str, Any]) -> Any:
        if verb == "pause":
            self._paused = True
            self._step_budget = 0
            return {"paused": True, "time": self.env.now}
        if verb == "resume":
            self._paused = False
            self._step_budget = 0
            self._anchor = None  # re-anchor pacing after a hold
            return {"paused": False, "time": self.env.now}
        if verb == "step":
            n = int(args.get("events", 1))
            if n < 1:
                raise SteerError("step needs events >= 1")
            self._paused = True
            self._step_budget += n
            return {"paused": True, "stepping": n, "time": self.env.now}
        if verb == "set_rate":
            if "rate" not in args:
                raise SteerError("set_rate needs a 'rate' argument")
            self._rate = float(args["rate"])
            if self._rate < 0:
                raise SteerError("rate must be >= 0 (0 = free-run)")
            self._anchor = None
            return {"rate": self._rate, "time": self.env.now}
        if verb in WORLD_VERBS:
            world = self.world
            if world is None:
                raise SteerError(
                    f"verb {verb!r} needs a bound world (build through "
                    f"Scenario inside a control_scope)")
            try:
                handler = getattr(world, verb)
            except AttributeError:
                raise SteerError(
                    f"world adapter has no handler for {verb!r}") from None
            return handler(**args)
        raise SteerError(
            f"unknown steering verb {verb!r}; choose from "
            f"{', '.join(CLOCK_VERBS + WORLD_VERBS)}")

    # -- thread-safe producer API -----------------------------------------
    def call(self, fn: Callable[["SimController"], Any],
             timeout: float = 30.0) -> Any:
        """Run ``fn(controller)`` at the drain point; return its result.

        While the controlled loop is live the closure queues for the
        next drain; when the loop is stopped (between ``env.run()``
        calls, or after :meth:`finish`) it executes inline — the sim
        thread is not consuming events, so there is nothing to race.
        """
        cmd = _Command(fn)
        inline = False
        with self._cv:
            if not self._running:
                inline = True
            else:
                self._commands.append(cmd)
                self._busy = True
                self._cv.notify_all()
        if inline:
            self._execute(cmd)
        else:
            deadline = perf_counter() + timeout
            while not cmd.done.wait(0.05):
                with self._cv:
                    if cmd.done.is_set():
                        break
                    if not self._running and cmd in self._commands:
                        # The loop stopped without draining us (run ended
                        # just after we enqueued): reclaim and run inline.
                        self._commands.remove(cmd)
                        inline = True
                        break
                    if perf_counter() >= deadline:
                        raise SteerError("steering command timed out")
            if inline:
                self._execute(cmd)
        if cmd.error is not None:
            raise cmd.error
        return cmd.result

    def steer(self, verb: str, **args: Any) -> Any:
        """Thread-safe verb execution (what ``POST /steer`` calls)."""
        return self.call(lambda c: c.apply(verb, args))

    def snapshot(self) -> Dict[str, Any]:
        """Drain-point-consistent state snapshot (thread-safe).

        The closure runs between events on the simulation thread, never
        concurrently with a callback — the fix for torn mid-run
        ``Histogram``/``TimeSeries`` reads.
        """
        return self.call(_snapshot_of)

    # -- lifecycle ---------------------------------------------------------
    def finish(self) -> None:
        """Declare the run over; release holds and queued callers.

        Safe from any thread: while the controlled loop is still live,
        this only flips the flag (waking ``_hold``/``_pace``) and lets
        the loop's own drain/exit answer the queue; once the loop has
        stopped, leftover commands execute inline here.
        """
        with self._cv:
            self.finished = True
            self._cv.notify_all()
            if self._running:
                return  # the live loop (or its end_run) drains the queue
            pending = list(self._commands)
            self._commands.clear()
        for cmd in pending:
            self._execute(cmd)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SimController actions={self._cursor}/"
                f"{len(self._actions)} paused={self._paused} "
                f"finished={self.finished}>")


def _snapshot_of(controller: SimController) -> Dict[str, Any]:
    """The closure :meth:`SimController.snapshot` executes at the drain."""
    env = controller.env
    telemetry = env.telemetry
    world = controller.world
    return {
        "time": env.now,
        "finished": controller.finished,
        "fired": list(controller.fired),
        "telemetry": telemetry.snapshot() if telemetry is not None else None,
        "world": world.status() if world is not None else None,
    }


@contextmanager
def control_scope(schedule: Optional[ChaosSchedule] = None,
                  rate: float = 0.0) -> Iterator[List[SimController]]:
    """Auto-install a controller on every Environment built in this scope.

    Mirrors :func:`repro.obs.telemetry.telemetry_scope`: yields the
    (initially empty) list of controllers in environment-construction
    order.  Each environment gets its *own* controller sharing the
    (immutable) schedule, so multi-environment cells replay the same
    chaos in each world deterministically.  On exit every controller is
    finished, so stragglers blocked in ``call()`` are released.
    """
    from ..sim.environment import Environment

    created: List[SimController] = []

    def factory(env: "Environment") -> SimController:
        controller = SimController(env, schedule=schedule, rate=rate)
        created.append(controller)
        return controller

    previous = Environment.control_factory
    Environment.control_factory = factory  # simlint: disable=flow-worker-purity -- restored in finally; the write is scoped to this worker's own cell, never leaks across cells
    try:
        yield created
    finally:
        Environment.control_factory = previous  # simlint: disable=flow-worker-purity -- restores the pre-scope factory (cell-local by construction)
        for controller in created:
            controller.finish()
