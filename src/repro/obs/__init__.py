"""Observability substrate: spans, sim-time metrics, profiler, exporters.

``repro.obs`` is a side library (like ``repro.metrics``) usable from any
layer.  The instrumented layers — broker, streaming, multiprogramming,
grid, net — never import it; they only read the ``Environment.tracer``
and ``Environment.telemetry`` hooks, which are ``None`` unless a
:class:`Tracer` / :class:`Telemetry` has been installed.  That keeps
observability strictly opt-in and zero-cost for uninstrumented runs
(enforced by the ``obs-direct-import`` simlint rule).

Typical use::

    from repro.obs import Telemetry, Tracer

    tracer = Tracer(env).install()        # sets env.tracer
    telemetry = Telemetry(env).install()  # sets env.telemetry
    ... run the simulation ...
    from repro.metrics import phase_breakdown_table, telemetry_overview
    print(phase_breakdown_table(tracer).render())
    print(telemetry_overview(telemetry.snapshot()))

For real-time attribution of kernel work, use
``Environment(profile=True)`` (or :class:`profile_scope`); for a
Chrome/Perfetto trace of spans + counter tracks, see
:func:`export_chrome_trace`.

Live observation and steering use the third hook, ``Environment.control``:
a :class:`SimController` (installed by :func:`control_scope`) drains a
thread-safe command queue between kernel events, replays
:class:`ChaosSchedule` verbs at fixed sim-times, and backs the
``repro serve`` HTTP control plane (:class:`ControlPlaneServer`).
"""

from .control import (
    ChaosAction,
    ChaosSchedule,
    SimController,
    SteerError,
    control_scope,
)
from .profiler import KernelProfiler, SiteStats, profile_scope
from .perfetto import chrome_trace, export_chrome_trace
from .telemetry import (
    Counter,
    Gauge,
    Histogram,
    QuantileSketch,
    Telemetry,
    TimeSeries,
    merge_snapshots,
    scope_snapshot,
    telemetry_scope,
)
from .serve import (
    ControlPlaneServer,
    fetch_json,
    fetch_snapshot,
    format_sse,
    snapshot_stream,
)
from .tracer import PHASES, PhaseStats, Span, TraceEvent, Tracer

__all__ = [
    "PHASES",
    "ChaosAction",
    "ChaosSchedule",
    "ControlPlaneServer",
    "SimController",
    "SteerError",
    "control_scope",
    "fetch_json",
    "fetch_snapshot",
    "format_sse",
    "snapshot_stream",
    "Counter",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "PhaseStats",
    "QuantileSketch",
    "SiteStats",
    "Span",
    "Telemetry",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "export_chrome_trace",
    "merge_snapshots",
    "profile_scope",
    "scope_snapshot",
    "telemetry_scope",
]
