"""Observability substrate: span tracing, counters, bounded event rings.

``repro.obs`` is a side library (like ``repro.metrics``) usable from any
layer.  The instrumented layers — broker, streaming, multiprogramming —
never import it; they only read the ``Environment.tracer`` hook, which is
``None`` unless a :class:`Tracer` has been installed.  That keeps tracing
strictly opt-in and zero-cost for untraced runs.

Typical use::

    from repro.obs import Tracer

    tracer = Tracer(env).install()     # sets env.tracer
    ... run the simulation ...
    from repro.metrics import phase_breakdown_table
    print(phase_breakdown_table(tracer).render())
"""

from .tracer import PHASES, PhaseStats, Span, TraceEvent, Tracer

__all__ = ["PHASES", "PhaseStats", "Span", "TraceEvent", "Tracer"]
