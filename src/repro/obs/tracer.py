"""Span-based tracing for the job lifecycle.

The paper's end-to-end numbers (Table I, Figs. 6-8) are sums of many
middleware stages: broker matchmaking, GRAM traversal, glide-in
bootstrap, Console Agent streaming, output retrieval.  The
:class:`Tracer` attributes where that time goes: instrumented layers
record *spans* (named intervals against sim-time, nested per job),
bump per-job / per-site *counters*, and append debug *events* into a
bounded ring buffer.

Design constraints:

* **zero cost when disabled** — there is no global tracer; layers read
  ``env.tracer`` (``None`` by default) and skip all bookkeeping, so an
  untraced run allocates nothing and pays one attribute load per hook;
* **bounded memory** — raw spans are retained up to ``max_spans``
  (aggregates stay exact past the bound), per-phase duration windows are
  ring-buffered for percentiles, and the event log is a ``deque`` with
  ``maxlen`` — a heavy-traffic soak cannot grow the tracer unboundedly;
* **sim-time only** — all timestamps come from ``env.now``; wall-clock
  never leaks into a trace, keeping runs reproducible.

Canonical span names used by the instrumented layers (any name is
accepted; these are the lifecycle phases the ``repro trace`` breakdown
reports):

========================  ====================================================
``submit``                whole broker ``_run`` for one job
``match``                 discovery + selection (or local registry lookup)
``gram_submit``           GSI + gatekeeper + LRMS submission of one subjob
``agent_bootstrap``       glide-in transfer, boot, and registration
``dispatch``              direct broker->agent RPC dispatch
``vm_acquire``            agent-side VM slot acquisition + setup
``stream_chunk``          one chunk send on the CA<->shadow connection
``reconnect``             reliable-sender backoff wait after a send failure
``output_retrieval``      output sandbox staging back to the broker
========================  ====================================================
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment

__all__ = ["PHASES", "PhaseStats", "Span", "Tracer", "TraceEvent"]

#: The canonical lifecycle phases (documentation + ordering for reports).
PHASES: Tuple[str, ...] = (
    "submit", "match", "gram_submit", "agent_bootstrap", "dispatch",
    "vm_acquire", "stream_chunk", "reconnect", "output_retrieval",
)


class Span:
    """One named interval of simulated time, optionally nested.

    ``end`` stays ``None`` while the span is open; :meth:`Tracer.end`
    stamps it.  ``parent`` links to the enclosing open span of the same
    job, which lets exporters rebuild the per-job phase tree.
    """

    __slots__ = ("name", "start", "end", "job", "site", "status", "parent",
                 "meta")

    def __init__(self, name: str, start: float, job: Optional[str] = None,
                 site: Optional[str] = None, parent: Optional["Span"] = None,
                 meta: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.job = job
        self.site = site
        self.status = "open"
        self.parent = parent
        self.meta = meta

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def elapsed(self) -> float:
        """Duration in sim-seconds (raises while the span is open)."""
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    @property
    def depth(self) -> int:
        d, p = 0, self.parent
        while p is not None:
            d, p = d + 1, p.parent
        return d

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name, "start": self.start, "end": self.end,
            "status": self.status,
        }
        if self.end is not None:
            out["elapsed"] = self.end - self.start
        if self.job is not None:
            out["job"] = self.job
        if self.site is not None:
            out["site"] = self.site
        if self.parent is not None:
            out["parent"] = self.parent.name
        if self.meta:
            out["meta"] = dict(self.meta)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tail = "open" if self.end is None else f"{self.elapsed:.6g}s"
        return f"<Span {self.name} job={self.job} {tail}>"


class TraceEvent:
    """One ring-buffered debug record (drops, retries, kills, ...)."""

    __slots__ = ("time", "kind", "data")

    def __init__(self, time: float, kind: str, data: Dict[str, Any]) -> None:
        self.time = time
        self.kind = kind
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "kind": self.kind, **self.data}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TraceEvent {self.kind}@{self.time:.6g} {self.data!r}>"


class PhaseStats:
    """Exact running aggregates for one span name, plus a percentile window.

    ``count``/``total``/``minimum``/``maximum`` are exact no matter how many
    spans ran; percentiles come from the most recent ``window`` durations so
    memory stays bounded on long soaks.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "errors",
                 "_window")

    def __init__(self, name: str, window: int = 2048) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        # -inf mirrors ``minimum``: an all-negative stream (clock skew,
        # corrected timestamps) must not report a phantom max of 0.0.
        # ``to_dict`` guards both behind ``count``.
        self.maximum = float("-inf")
        self.errors = 0
        self._window: deque = deque(maxlen=window)

    def add(self, elapsed: float, ok: bool) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed < self.minimum:
            self.minimum = elapsed
        if elapsed > self.maximum:
            self.maximum = elapsed
        if not ok:
            self.errors += 1
        self._window.append(elapsed)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Percentile over the retained window (q in [0, 100])."""
        if not self._window:
            return float("nan")
        ordered = sorted(self._window)
        idx = (len(ordered) - 1) * (q / 100.0)
        lo = int(idx)
        hi = min(lo + 1, len(ordered) - 1)
        frac = idx - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "count": self.count, "total": self.total,
            "mean": self.mean if self.count else None,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "p50": self.percentile(50) if self.count else None,
            "p95": self.percentile(95) if self.count else None,
            "errors": self.errors,
        }


class Tracer:
    """Collects spans, counters, and ring-buffered events against sim-time.

    Install with ``env.tracer = Tracer(env)`` (or :meth:`install`);
    instrumented layers do::

        tr = self.env.tracer
        if tr is not None:
            span = tr.begin("gram_submit", job=job_id, site=site)
            ...
            tr.end(span)

    so a disabled run performs one ``None`` check and allocates nothing.
    """

    def __init__(self, env: "Environment", ring_size: int = 4096,
                 max_spans: int = 50_000,
                 percentile_window: int = 2048) -> None:
        self.env = env
        self.enabled = True
        #: Completed spans in end order, bounded by ``max_spans``.
        self.spans: List[Span] = []
        self.max_spans = max_spans
        #: Spans that finished past the retention bound (aggregates still
        #: counted them).
        self.dropped_spans = 0
        #: Ring-buffered debug events.
        self.events: deque = deque(maxlen=ring_size)
        #: Global counters (name -> count).
        self.counters: Dict[str, int] = {}
        #: Per-job and per-site counter maps.
        self.job_counters: Dict[str, Dict[str, int]] = {}
        self.site_counters: Dict[str, Dict[str, int]] = {}
        self._agg: Dict[str, PhaseStats] = {}
        self._percentile_window = percentile_window
        #: Per-job totals: job -> phase -> accumulated seconds.
        self._job_phase: Dict[str, Dict[str, float]] = {}
        #: Per-job stacks of open spans (for nesting).
        self._open: Dict[Optional[str], List[Span]] = {}

    # -- installation ---------------------------------------------------
    def install(self) -> "Tracer":
        """Attach this tracer to its environment's hook point."""
        self.env.tracer = self
        return self

    def uninstall(self) -> None:
        if getattr(self.env, "tracer", None) is self:
            self.env.tracer = None

    # -- spans ----------------------------------------------------------
    def begin(self, name: str, job: Optional[str] = None,
              site: Optional[str] = None, **meta: Any) -> Span:
        """Open a span at the current sim-time.

        Nesting is per-job: an open span for the same job becomes the
        parent.  (Cross-process interleaving makes a single global stack
        meaningless in a DES, so job-less spans never nest.)
        """
        parent: Optional[Span] = None
        if job is not None:
            stack = self._open.get(job)
            if stack:
                parent = stack[-1]
        span = Span(name, self.env.now, job=job, site=site, parent=parent,
                    meta=meta or None)
        if job is not None:
            self._open.setdefault(job, []).append(span)
        return span

    def end(self, span: Span, status: str = "ok") -> Span:
        """Close a span, folding it into the aggregates."""
        if span.end is not None:  # idempotent: double-end is a no-op
            return span
        span.end = self.env.now
        span.status = status
        if span.job is not None:
            stack = self._open.get(span.job)
            if stack and span in stack:
                stack.remove(span)
            if not stack:
                self._open.pop(span.job, None)
        agg = self._agg.get(span.name)
        if agg is None:
            agg = self._agg[span.name] = PhaseStats(
                span.name, window=self._percentile_window)
        agg.add(span.end - span.start, ok=(status == "ok"))
        if span.job is not None:
            phases = self._job_phase.setdefault(span.job, {})
            phases[span.name] = phases.get(span.name, 0.0) + span.elapsed
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped_spans += 1
        return span

    def span(self, name: str, job: Optional[str] = None,
             site: Optional[str] = None, **meta: Any) -> "_SpanContext":
        """Context-manager form (safe across generator yields)."""
        return _SpanContext(self, name, job, site, meta)

    # -- counters --------------------------------------------------------
    def count(self, name: str, n: int = 1, job: Optional[str] = None,
              site: Optional[str] = None) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        if job is not None:
            per = self.job_counters.setdefault(job, {})
            per[name] = per.get(name, 0) + n
        if site is not None:
            per = self.site_counters.setdefault(site, {})
            per[name] = per.get(name, 0) + n

    # -- event ring -------------------------------------------------------
    def event(self, kind: str, **data: Any) -> None:
        self.events.append(TraceEvent(self.env.now, kind, data))

    # -- queries -----------------------------------------------------------
    def phase_stats(self) -> Dict[str, PhaseStats]:
        """Aggregated span stats, canonical phases first."""
        ordered: Dict[str, PhaseStats] = {}
        for name in PHASES:
            if name in self._agg:
                ordered[name] = self._agg[name]
        for name, agg in self._agg.items():
            if name not in ordered:
                ordered[name] = agg
        return ordered

    def job_breakdown(self, job: str) -> Dict[str, float]:
        """Total seconds per phase accumulated for one job."""
        return dict(self._job_phase.get(job, {}))

    def jobs(self) -> List[str]:
        return list(self._job_phase)

    def spans_of(self, name: Optional[str] = None,
                 job: Optional[str] = None) -> List[Span]:
        out: Iterable[Span] = self.spans
        if name is not None:
            out = (s for s in out if s.name == name)
        if job is not None:
            out = (s for s in out if s.job == job)
        return list(out)

    def open_spans(self) -> List[Span]:
        return [s for stack in self._open.values() for s in stack]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot of everything the tracer holds.

        Counter maps are emitted in sorted key order so two identical
        runs serialise byte-identically regardless of which layer bumped
        a counter first (spans/events keep their chronological order).
        """
        def _sorted(mapping: Dict[str, Any]) -> Dict[str, Any]:
            return {key: mapping[key] for key in sorted(mapping)}

        return {
            "phases": {name: agg.to_dict()
                       for name, agg in self.phase_stats().items()},
            "counters": _sorted(self.counters),
            "job_counters": {j: _sorted(c)
                             for j, c in sorted(self.job_counters.items())},
            "site_counters": {s: _sorted(c)
                              for s, c in sorted(self.site_counters.items())},
            "jobs": {j: _sorted(p)
                     for j, p in sorted(self._job_phase.items())},
            "spans": [s.to_dict() for s in self.spans],
            "events": [e.to_dict() for e in self.events],
            "dropped_spans": self.dropped_spans,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Tracer spans={len(self.spans)} "
                f"events={len(self.events)} "
                f"counters={len(self.counters)}>")


class _SpanContext:
    """``with tracer.span(...)`` helper; marks status=error on exceptions."""

    __slots__ = ("_tracer", "_args", "span")

    def __init__(self, tracer: Tracer, name: str, job: Optional[str],
                 site: Optional[str], meta: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._args = (name, job, site, meta)
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        name, job, site, meta = self._args
        self.span = self._tracer.begin(name, job=job, site=site, **meta)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self.span is not None
        self._tracer.end(self.span,
                         status="ok" if exc_type is None else "error")
        return False
