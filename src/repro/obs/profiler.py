"""Kernel wall-clock profiler: where does *real* time go?

``repro bench`` tells you the kernel got slower; this profiler tells you
*why*.  ``Environment(profile=True)`` (or the :func:`profile_scope`
class-default context manager) attaches a :class:`KernelProfiler` and
routes the run loop through a generic, per-callback-timed path that
attributes ``time.perf_counter()`` deltas to *sites*:

* ``process:<generator name>`` — a suspended process resumed (the site
  is the generator function's code name, so cardinality stays bounded
  no matter how many jobs run);
* ``callback:<qualname>``      — a plain callback invoked;
* ``timer:<name>``             — a timer shot popped (fires, deferrals,
  and tombstone collection all count: lazy deletion is kernel work too).

Wall-clock readings never feed back into simulation state — the
profiler is observation-only, and the profiled loop preserves the exact
event order of the fast loop (it mirrors ``Environment.step()``
semantics).  Profiled runs are slower (one ``perf_counter`` pair per
callback); that is the price of attribution and the reason the flag is
opt-in.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Dict, List

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment

__all__ = ["KernelProfiler", "SiteStats", "profile_scope"]


class SiteStats:
    """Exact wall-clock aggregates for one attribution site."""

    __slots__ = ("site", "count", "total", "maximum")

    def __init__(self, site: str) -> None:
        self.site = site
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0

    def add(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed > self.maximum:
            self.maximum = elapsed

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def to_dict(self) -> Dict[str, Any]:
        return {"site": self.site, "count": self.count, "total_s": self.total,
                "mean_s": self.mean, "max_s": self.maximum}


class KernelProfiler:
    """Attributes real time to process/callback/timer sites.

    The clock is ``time.perf_counter`` — monotonic wall time, never the
    simulation clock, and never read *by* the simulation.
    """

    clock = staticmethod(perf_counter)

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.sites: Dict[str, SiteStats] = {}
        #: Events processed while profiling (callback invocations).
        self.callbacks = 0
        #: Wall seconds spent inside ``run()`` (loop overhead included).
        self.run_wall = 0.0

    # -- recording (called from Environment._run_profiled) ---------------
    def record(self, site: str, t0: float) -> None:
        elapsed = perf_counter() - t0
        stats = self.sites.get(site)
        if stats is None:
            stats = self.sites[site] = SiteStats(site)
        stats.add(elapsed)
        self.callbacks += 1

    @staticmethod
    def site_of(callback: Any) -> str:
        """A bounded-cardinality attribution key for a callback."""
        generator = getattr(callback, "_generator", None)
        if generator is not None:  # a Process: attribute to its code site
            code = getattr(generator, "gi_code", None)
            if code is not None:
                return f"process:{code.co_name}"
            return f"process:{type(callback).__name__}"
        func = getattr(callback, "__func__", callback)
        name = getattr(func, "__qualname__", None) \
            or getattr(func, "__name__", None) \
            or type(callback).__name__
        return f"callback:{name}"

    @staticmethod
    def timer_site(timer: Any) -> str:
        name = getattr(timer, "name", None)
        return f"timer:{name}" if name else "timer:<anonymous>"

    # -- reporting -------------------------------------------------------
    def rows(self) -> List[SiteStats]:
        """Sites sorted by total wall time (descending), name-stable."""
        return sorted(self.sites.values(),
                      key=lambda s: (-s.total, s.site))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "callbacks": self.callbacks,
            "run_wall_s": self.run_wall,
            "sites": [s.to_dict() for s in self.rows()],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<KernelProfiler sites={len(self.sites)} "
                f"callbacks={self.callbacks} wall={self.run_wall:.3f}s>")


class profile_scope:
    """Flip ``Environment.default_profile`` for a ``with`` block, so every
    environment built inside gets a profiler without threading the flag
    through world builders (mirrors ``repro.analysis.sanitize_all``)."""

    def __init__(self) -> None:
        self._previous = False

    def __enter__(self) -> "profile_scope":
        from ..sim.environment import Environment

        self._previous = Environment.default_profile
        Environment.default_profile = True
        return self

    def __exit__(self, *exc: Any) -> None:
        from ..sim.environment import Environment

        Environment.default_profile = self._previous
