"""Synthetic job-mix generators for integration tests and fair-share runs.

The paper's testbed served a mix of long batch jobs and short interactive
sessions from many users; these generators produce that mix with seeded
Poisson arrivals, so scheduler-level scenarios (saturation, priority
penalties, agent reuse) are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from ..jdl import JobDescription, JobCategory, JobFlavor, MachineAccess, StreamingMode
from ..sim import RandomStreams


@dataclass(frozen=True)
class JobArrival:
    """One generated submission."""

    at: float
    job: JobDescription
    #: Suggested runtime for the behavior attached to this job.
    runtime: float


@dataclass
class MixConfig:
    """Shape of a generated workload."""

    users: Sequence[str] = ("alice", "bob", "carol", "dave")
    horizon: float = 3600.0
    #: Mean inter-arrival of batch jobs (Poisson).
    batch_interarrival: float = 300.0
    #: Mean inter-arrival of interactive jobs.
    interactive_interarrival: float = 240.0
    #: Fraction of interactive jobs asking for shared access.
    shared_fraction: float = 0.7
    batch_runtime_mean: float = 1800.0
    interactive_runtime_mean: float = 120.0
    performance_losses: Sequence[int] = (10, 25)
    parallel_fraction: float = 0.0
    max_nodes: int = 4


def generate_mix(rng: RandomStreams, config: Optional[MixConfig] = None,
                 stream: str = "mix") -> List[JobArrival]:
    """Deterministically generate a job mix, sorted by arrival time."""
    config = config or MixConfig()
    arrivals: List[JobArrival] = []

    def draw_user(tag: str, i: int) -> str:
        return rng.choice(f"{stream}/{tag}/user/{i}", list(config.users))

    # Batch stream.
    t, i = 0.0, 0
    while True:
        t += rng.exponential(f"{stream}/batch/gap", config.batch_interarrival)
        if t >= config.horizon:
            break
        runtime = max(rng.exponential(f"{stream}/batch/run",
                                      config.batch_runtime_mean), 60.0)
        job = JobDescription(
            executable="batch_sim",
            owner=draw_user("batch", i),
            category=JobCategory.BATCH,
            estimated_runtime=runtime,
            # Deterministic id: job ids key RNG streams downstream, so the
            # same mix must replay identically run after run.
            job_id=f"{stream}-batch-{i:05d}",
        )
        arrivals.append(JobArrival(t, job, runtime))
        i += 1

    # Interactive stream.
    t, i = 0.0, 0
    while True:
        t += rng.exponential(f"{stream}/int/gap",
                             config.interactive_interarrival)
        if t >= config.horizon:
            break
        runtime = max(rng.exponential(f"{stream}/int/run",
                                      config.interactive_runtime_mean), 10.0)
        shared = rng.uniform(f"{stream}/int/shared/{i}", 0, 1) \
            < config.shared_fraction
        parallel = rng.uniform(f"{stream}/int/par/{i}", 0, 1) \
            < config.parallel_fraction
        nodes = 1
        flavor = JobFlavor.SEQUENTIAL
        if parallel and config.max_nodes > 1:
            nodes = int(rng.uniform(f"{stream}/int/nodes/{i}", 2,
                                    config.max_nodes + 1))
            flavor = JobFlavor.MPICH_G2
        pl = rng.choice(f"{stream}/int/pl/{i}",
                        list(config.performance_losses)) if shared else 0
        job = JobDescription(
            executable="interactive_sim",
            owner=draw_user("int", i),
            category=JobCategory.INTERACTIVE,
            flavor=flavor,
            node_number=nodes,
            machine_access=MachineAccess.SHARED if shared
            else MachineAccess.EXCLUSIVE,
            performance_loss=pl,
            streaming_mode=StreamingMode.FAST,
            estimated_runtime=runtime,
            job_id=f"{stream}-int-{i:05d}",
        )
        arrivals.append(JobArrival(t, job, runtime))
        i += 1

    arrivals.sort(key=lambda a: a.at)
    return arrivals


def replay(env, broker, arrivals: List[JobArrival], behavior_for,
           ui_host: str = "ui"):
    """Submit a generated mix against a broker as a simulation process.

    ``behavior_for(arrival, rank) -> Behavior`` builds each job's payload.
    Returns the list of SubmittedJob records.
    """
    submitted = []

    def feeder():
        t_prev = 0.0
        # Re-armable pacing timer for the whole arrival sequence.
        pace = env.timer(name="mix/feeder/pace")
        for arrival in arrivals:
            if arrival.at > t_prev:
                yield pace.arm(arrival.at - t_prev)
            t_prev = arrival.at
            record = broker.submit(
                arrival.job,
                lambda rank, a=arrival: behavior_for(a, rank),
                ui_host=ui_host,
                attach_console=arrival.job.is_interactive)
            submitted.append(record)
        return submitted

    proc = env.process(feeder(), name="mix/feeder")
    return submitted, proc
