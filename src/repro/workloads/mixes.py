"""Synthetic job-mix generators for integration tests and fair-share runs.

The paper's testbed served a mix of long batch jobs and short interactive
sessions from many users; these generators produce that mix with seeded
Poisson arrivals, so scheduler-level scenarios (saturation, priority
penalties, agent reuse) are reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from ..jdl import JobDescription, JobCategory, JobFlavor, MachineAccess, StreamingMode
from ..sim import RandomStreams


@dataclass(frozen=True)
class JobArrival:
    """One generated submission."""

    at: float
    job: JobDescription
    #: Suggested runtime for the behavior attached to this job.
    runtime: float


@dataclass
class MixConfig:
    """Shape of a generated workload."""

    users: Sequence[str] = ("alice", "bob", "carol", "dave")
    horizon: float = 3600.0
    #: Mean inter-arrival of batch jobs (Poisson).
    batch_interarrival: float = 300.0
    #: Mean inter-arrival of interactive jobs.
    interactive_interarrival: float = 240.0
    #: Fraction of interactive jobs asking for shared access.
    shared_fraction: float = 0.7
    batch_runtime_mean: float = 1800.0
    interactive_runtime_mean: float = 120.0
    performance_losses: Sequence[int] = (10, 25)
    parallel_fraction: float = 0.0
    max_nodes: int = 4


def _iter_batch(rng: RandomStreams, config: MixConfig,
                stream: str) -> Iterator[JobArrival]:
    """The lazy batch-job arrival stream (time-ordered)."""
    t, i = 0.0, 0
    while True:
        t += rng.exponential(f"{stream}/batch/gap", config.batch_interarrival)
        if t >= config.horizon:
            return
        runtime = max(rng.exponential(f"{stream}/batch/run",
                                      config.batch_runtime_mean), 60.0)
        job = JobDescription(
            executable="batch_sim",
            owner=rng.choice(f"{stream}/batch/user/{i}", list(config.users)),
            category=JobCategory.BATCH,
            estimated_runtime=runtime,
            # Deterministic id: job ids key RNG streams downstream, so the
            # same mix must replay identically run after run.
            job_id=f"{stream}-batch-{i:05d}",
        )
        yield JobArrival(t, job, runtime)
        i += 1


def _iter_interactive(rng: RandomStreams, config: MixConfig,
                      stream: str) -> Iterator[JobArrival]:
    """The lazy interactive-session arrival stream (time-ordered)."""
    t, i = 0.0, 0
    while True:
        t += rng.exponential(f"{stream}/int/gap",
                             config.interactive_interarrival)
        if t >= config.horizon:
            return
        runtime = max(rng.exponential(f"{stream}/int/run",
                                      config.interactive_runtime_mean), 10.0)
        shared = rng.uniform(f"{stream}/int/shared/{i}", 0, 1) \
            < config.shared_fraction
        parallel = rng.uniform(f"{stream}/int/par/{i}", 0, 1) \
            < config.parallel_fraction
        nodes = 1
        flavor = JobFlavor.SEQUENTIAL
        if parallel and config.max_nodes > 1:
            nodes = int(rng.uniform(f"{stream}/int/nodes/{i}", 2,
                                    config.max_nodes + 1))
            flavor = JobFlavor.MPICH_G2
        pl = rng.choice(f"{stream}/int/pl/{i}",
                        list(config.performance_losses)) if shared else 0
        job = JobDescription(
            executable="interactive_sim",
            owner=rng.choice(f"{stream}/int/user/{i}", list(config.users)),
            category=JobCategory.INTERACTIVE,
            flavor=flavor,
            node_number=nodes,
            machine_access=MachineAccess.SHARED if shared
            else MachineAccess.EXCLUSIVE,
            performance_loss=pl,
            streaming_mode=StreamingMode.FAST,
            estimated_runtime=runtime,
            job_id=f"{stream}-int-{i:05d}",
        )
        yield JobArrival(t, job, runtime)
        i += 1


def iter_mix(rng: RandomStreams, config: Optional[MixConfig] = None,
             stream: str = "mix") -> Iterator[JobArrival]:
    """Lazily generate the job mix in arrival-time order.

    Identical arrivals to :func:`generate_mix` (every draw comes from
    the same named substream, and named substreams are independent of
    draw interleaving), but the mix never materialises: the two class
    streams are merged on the fly, so memory stays O(1) in the horizon.
    Ties keep batch-before-interactive order, matching the stable sort
    :func:`generate_mix` historically applied.
    """
    config = config or MixConfig()
    return heapq.merge(_iter_batch(rng, config, stream),
                       _iter_interactive(rng, config, stream),
                       key=lambda a: a.at)


def generate_mix(rng: RandomStreams, config: Optional[MixConfig] = None,
                 stream: str = "mix") -> List[JobArrival]:
    """Deterministically generate a job mix, sorted by arrival time."""
    return list(iter_mix(rng, config, stream))


def replay_stream(env, broker, arrivals: Iterable[JobArrival], behavior_for,
                  ui_host: str = "ui", on_submit=None):
    """Submit an arrival stream against a broker without retaining it.

    The streaming twin of :func:`replay`: ``arrivals`` may be any
    iterable (a list, :func:`iter_mix`, :func:`iter_trace`, or a scale
    campaign generator) and is consumed one arrival at a time.  Each
    submission record is handed to ``on_submit(record, arrival)`` (when
    given) and then dropped, so a million-job replay holds O(1) arrival
    state.  Returns the feeder process; its value is the submit count.
    """

    def feeder():
        t_prev = 0.0
        submitted = 0
        # Re-armable pacing timer for the whole arrival sequence.
        pace = env.timer(name="mix/feeder/pace")
        for arrival in arrivals:
            if arrival.at > t_prev:
                yield pace.arm(arrival.at - t_prev)
            t_prev = arrival.at
            record = broker.submit(
                arrival.job,
                lambda rank, a=arrival: behavior_for(a, rank),
                ui_host=ui_host,
                attach_console=arrival.job.is_interactive)
            submitted += 1
            if on_submit is not None:
                on_submit(record, arrival)
        return submitted

    return env.process(feeder(), name="mix/feeder")


def replay(env, broker, arrivals: Iterable[JobArrival], behavior_for,
           ui_host: str = "ui"):
    """Submit a generated mix against a broker as a simulation process.

    ``behavior_for(arrival, rank) -> Behavior`` builds each job's payload.
    Returns the list of SubmittedJob records (grown as the feeder runs;
    for unbounded streams use :func:`replay_stream` instead).
    """
    submitted = []
    proc = replay_stream(env, broker, arrivals, behavior_for,
                         ui_host=ui_host,
                         on_submit=lambda record, _a: submitted.append(record))
    return submitted, proc
