"""The §6.2 I/O-streaming test suite.

"A client and a server process were created in the submission and
execution machines... The client and server executed a coordinated
sequence of 1,000 read/write operations... Data transferred in each
read/write operation varied from 10 bytes to 10K, and we measured the
round trip incurred by each sequence."
"""

from __future__ import annotations

from typing import Generator, List, Sequence

from ..baselines.base import Mechanism

#: Payload sizes of Fig. 6/7 (bytes).
PAPER_SIZES: Sequence[int] = (10, 100, 1000, 10000)
PAPER_SEQUENCES = 1000


def run_sequences(mechanism: Mechanism, nbytes: int, count: int,
                  server_time: float = 0.0) -> Generator:
    """Run ``count`` coordinated sequences; returns per-sequence times."""
    if not mechanism.established:
        yield from mechanism.establish()
    times: List[float] = []
    for _ in range(count):
        elapsed = yield from mechanism.roundtrip(nbytes, nbytes,
                                                 server_time=server_time)
        times.append(elapsed)
    return times
