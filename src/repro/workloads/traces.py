"""Workload trace files: save/load/stream job-arrival streams.

A generated mix can be frozen to disk and replayed later (or edited by
hand), which turns scheduler scenarios into versionable artifacts — the
moral equivalent of the batch-system logs grid papers of the era replayed.

Two on-disk formats are understood:

* **v1** — a single JSON document ``{"version": 1, "jobs": [...]}``.
  Readable forever, but the whole trace must fit in memory on both the
  write and the read side.
* **v2** (current) — chunked NDJSON: the first line is a small JSON
  header ``{"version": 2, "description": ..., "jobs": <count|null>}``
  and every following line is one arrival record.  Traces stream to and
  from disk one record at a time, so a 10⁷-job campaign never
  materialises; :func:`save_trace` accepts any iterable (including lazy
  generators from :mod:`repro.workloads.scale`) and :func:`iter_trace`
  yields arrivals without loading the file.

Writes are crash-safe: the destination is written as a same-directory
temp file and atomically :func:`os.replace`-d into place (the same
pattern as :mod:`repro.runner.cache`), so an interrupted dump can never
leave a truncated, unparseable trace under the target name.
"""

from __future__ import annotations

import io
import json
import os
from typing import Any, Dict, Iterable, Iterator, List, Optional

from ..jdl import JobDescription
from .mixes import JobArrival

#: Format written by :func:`save_trace`.  v1 files remain readable.
TRACE_VERSION = 2

#: Versions :func:`load_trace` / :func:`iter_trace` accept.
SUPPORTED_VERSIONS = (1, 2)


def arrival_to_record(arrival: JobArrival) -> dict:
    """One arrival as a JSON-able record (full job fidelity).

    Everything :meth:`JobDescription.from_attributes` can reconstruct is
    serialized: the interactivity attributes, the runtime estimate, both
    sandboxes, requirements/rank expressions, the pinned shadow port,
    and any raw matchmaking attributes.
    """
    job = arrival.job
    payload: Dict[str, Any] = {
        "executable": job.executable,
        "arguments": list(job.arguments),
        "owner": job.owner,
        "jobtype": [job.category.value, job.flavor.value],
        "nodenumber": job.node_number,
        "streamingmode": job.streaming_mode.value,
        "machineaccess": job.machine_access.value,
        "performanceloss": job.performance_loss,
        "job_id": job.job_id,
    }
    if job.estimated_runtime is not None:
        payload["estimatedruntime"] = job.estimated_runtime
    if job.input_sandbox:
        payload["inputsandbox"] = [[name, size]
                                   for name, size in job.input_sandbox]
    if job.output_sandbox:
        payload["outputsandbox"] = [[name, size]
                                    for name, size in job.output_sandbox]
    if job.requirements is not None:
        payload["requirements"] = str(job.requirements)
    if job.rank is not None:
        payload["rank"] = str(job.rank)
    if job.shadow_port is not None:
        payload["shadowport"] = job.shadow_port
    # Raw matchmaking attributes are leftover (lowercased, non-standard)
    # keys by construction, so they merge into the payload and fall back
    # out into ``job.raw`` when from_attributes re-validates the record.
    for key, value in job.raw.items():
        payload.setdefault(key, value)
    return {"at": arrival.at, "runtime": arrival.runtime, "job": payload}


def record_to_arrival(record: dict) -> JobArrival:
    payload = dict(record["job"])
    job_id = payload.pop("job_id", None)
    owner = payload.pop("owner", "anonymous")
    job = JobDescription.from_attributes(payload, owner=owner)
    if job_id is not None:
        # Explicit check: falsy-but-present ids (e.g. "" used as a
        # sentinel by external tooling) must survive the round trip
        # rather than being silently replaced by a fresh generated id.
        job.job_id = job_id
    return JobArrival(at=float(record["at"]), job=job,
                      runtime=float(record["runtime"]))


def _atomic_write(path: str) -> "_AtomicFile":
    return _AtomicFile(path)


class _AtomicFile:
    """Same-directory temp file committed with :func:`os.replace`."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.tmp = f"{path}.tmp.{os.getpid()}"
        self._fh: Optional[io.TextIOWrapper] = None

    def __enter__(self) -> io.TextIOWrapper:
        self._fh = open(self.tmp, "w", encoding="utf-8")
        return self._fh

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self._fh is not None:
            self._fh.close()
        if exc_type is None:
            os.replace(self.tmp, self.path)  # atomic on POSIX
        else:
            try:
                os.remove(self.tmp)
            except OSError:
                pass


def save_trace(arrivals: Iterable[JobArrival], path: str,
               description: str = "", count: Optional[int] = None) -> int:
    """Write a trace file (v2 NDJSON envelope); returns the job count.

    ``arrivals`` may be any iterable — a list, or a lazy generator from
    :func:`repro.workloads.iter_mix` / :mod:`repro.workloads.scale` —
    and is consumed one record at a time, so memory stays O(1) in the
    trace length.  Pass ``count`` when known so the header can advertise
    it (purely informational; readers count records themselves).
    """
    written = 0
    with _atomic_write(path) as fh:
        header = {"version": TRACE_VERSION, "description": description,
                  "jobs": count}
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for arrival in arrivals:
            fh.write(json.dumps(arrival_to_record(arrival),
                                sort_keys=True) + "\n")
            written += 1
    return written


def trace_header(path: str) -> dict:
    """The trace's envelope metadata without reading the records."""
    with open(path, encoding="utf-8") as fh:
        first = fh.readline()
    try:
        parsed = json.loads(first)
    except json.JSONDecodeError:
        parsed = None
    if isinstance(parsed, dict) and "version" in parsed:
        return {"version": parsed["version"],
                "description": parsed.get("description", ""),
                "jobs": parsed.get("jobs")}
    # v1 documents are pretty-printed: fall back to a full parse.
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    return {"version": payload.get("version"),
            "description": payload.get("description", ""),
            "jobs": len(payload.get("jobs", []))}


def iter_trace(path: str) -> Iterator[JobArrival]:
    """Stream arrivals from a trace file, one record at a time.

    v2 files are read line-by-line with O(1) memory, in file order
    (the writers emit time-sorted streams; :func:`load_trace` is the
    sorting reader).  v1 files are a single JSON document and are
    necessarily loaded eagerly, then yielded in file order.
    """
    with open(path, encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise ValueError(f"empty trace file {path!r}")
        try:
            header: Any = json.loads(first)
        except json.JSONDecodeError:
            header = None  # multi-line v1 document
        if isinstance(header, dict) and header.get("version") == 2 \
                and "at" not in header:
            for line in fh:
                if line.strip():
                    yield record_to_arrival(json.loads(line))
            return
    # Anything else must be a v1 whole-file document.
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    version = payload.get("version") if isinstance(payload, dict) else None
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported trace version {version!r}")
    for record in payload.get("jobs", []):
        yield record_to_arrival(record)


def load_trace(path: str) -> List[JobArrival]:
    """Read a trace file (v1 or v2) back into replayable arrivals."""
    arrivals = list(iter_trace(path))
    arrivals.sort(key=lambda a: a.at)
    return arrivals


__all__ = [
    "SUPPORTED_VERSIONS",
    "TRACE_VERSION",
    "arrival_to_record",
    "iter_trace",
    "load_trace",
    "record_to_arrival",
    "save_trace",
    "trace_header",
]
