"""Workload trace files: save/load job-arrival streams as JSON.

A generated mix can be frozen to disk and replayed later (or edited by
hand), which turns scheduler scenarios into versionable artifacts — the
moral equivalent of the batch-system logs grid papers of the era replayed.
"""

from __future__ import annotations

import json
from typing import List

from ..jdl import JobDescription
from .mixes import JobArrival

TRACE_VERSION = 1


def arrival_to_record(arrival: JobArrival) -> dict:
    job = arrival.job
    return {
        "at": arrival.at,
        "runtime": arrival.runtime,
        "job": {
            "executable": job.executable,
            "arguments": list(job.arguments),
            "owner": job.owner,
            "jobtype": [job.category.value, job.flavor.value],
            "nodenumber": job.node_number,
            "streamingmode": job.streaming_mode.value,
            "machineaccess": job.machine_access.value,
            "performanceloss": job.performance_loss,
            "job_id": job.job_id,
        },
    }


def record_to_arrival(record: dict) -> JobArrival:
    payload = dict(record["job"])
    job_id = payload.pop("job_id", None)
    owner = payload.pop("owner", "anonymous")
    job = JobDescription.from_attributes(payload, owner=owner)
    if job_id:
        job.job_id = job_id
    return JobArrival(at=float(record["at"]), job=job,
                      runtime=float(record["runtime"]))


def save_trace(arrivals: List[JobArrival], path: str,
               description: str = "") -> None:
    """Write a trace file (JSON, versioned envelope)."""
    payload = {
        "version": TRACE_VERSION,
        "description": description,
        "jobs": [arrival_to_record(a) for a in arrivals],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)


def load_trace(path: str) -> List[JobArrival]:
    """Read a trace file back into replayable arrivals."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    version = payload.get("version")
    if version != TRACE_VERSION:
        raise ValueError(f"unsupported trace version {version!r}")
    arrivals = [record_to_arrival(r) for r in payload.get("jobs", [])]
    arrivals.sort(key=lambda a: a.at)
    return arrivals
