"""Canned application behaviors used by examples and integration tests.

These model the CrossGrid application classes the introduction motivates
(Medical, Environmental, HEP): long simulations that emit progress output
and accept steering input in near-real time.
"""

from __future__ import annotations

from typing import Generator, List, Optional


def immediate_output_app(message: str = "started", run_for: float = 2.0,
                         nbytes: int = 64):
    """Writes one line as soon as it starts (the Table I measurement app)."""

    def behavior(ctx) -> Generator:
        yield from ctx.stdio.write(message, nbytes=nbytes, eol=True)
        if run_for > 0:
            yield from ctx.cpu(run_for)
        yield from ctx.stdio.eof()
        return "done"

    return behavior


def cpu_bound_app(duration: float):
    """A plain batch computation (no console interaction)."""

    def behavior(ctx) -> Generator:
        yield from ctx.cpu(duration)
        return duration

    return behavior


def progress_app(steps: int, step_cpu: float, label: str = "step"):
    """Emits one progress line per simulation step (on-line output
    control: the user may kill it when results look wrong)."""

    def behavior(ctx) -> Generator:
        for i in range(steps):
            yield from ctx.cpu(step_cpu)
            yield from ctx.stdio.write(f"{label} {i} done", nbytes=32,
                                       eol=True)
        yield from ctx.stdio.eof()
        return steps

    return behavior


def steerable_simulation(rank: int, steps: int = 20, step_cpu: float = 0.5):
    """A steering-capable MPI-style simulation.

    Rank 0 reads parameter updates from stdin between steps (§1's "Runtime
    Steering" requirement) and all ranks emit per-step results.  Input is
    broadcast to every rank (§4) — non-zero ranks drain and ignore it,
    which is exactly the discipline the paper asks of applications.
    """

    def behavior(ctx) -> Generator:
        param = 1.0
        results: List[float] = []
        for i in range(steps):
            yield from ctx.cpu(step_cpu)
            value = param * (i + 1)
            results.append(value)
            yield from ctx.stdio.write(
                f"rank{rank} step{i} value={value:.2f}", nbytes=48, eol=True)
            chunk = ctx.stdio.try_read()
            if chunk is not None and rank == 0 and chunk.data.startswith("set "):
                param = float(chunk.data.split()[1])
                yield from ctx.stdio.write(
                    f"rank0 applied param={param}", nbytes=32, eol=True)
        yield from ctx.stdio.eof()
        return results

    return behavior


def interactive_console_app(prompt: str = "> ", rounds: Optional[int] = None):
    """A read-eval-print style app: echoes commands until 'exit'."""

    def behavior(ctx) -> Generator:
        yield from ctx.stdio.write("console ready", nbytes=16, eol=True)
        count = 0
        while rounds is None or count < rounds:
            chunk = yield from ctx.stdio.read()
            count += 1
            if chunk.data.strip() == "exit":
                break
            yield from ctx.cpu(0.02)
            yield from ctx.stdio.write(f"{prompt}{chunk.data}",
                                       nbytes=chunk.nbytes + 2, eol=True)
        yield from ctx.stdio.eof()
        return count

    return behavior
