"""The Fig. 8 measurement application.

§6.3: "we wrote an interactive job which iterates 1,000 times.  At each
iteration, the application performs an I/O operation followed by a CPU
burst.  We measured the time elapsed during each of these operations."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from ..calibration import LoopAppProfile


@dataclass
class LoopSample:
    """One iteration's measured phase times."""

    iteration: int
    io_elapsed: float
    cpu_elapsed: float


def make_loop_app(profile: LoopAppProfile, label: str = "loopapp"):
    """Build the loop behavior; returns the per-iteration samples."""

    def behavior(ctx) -> Generator:
        samples: List[LoopSample] = []
        for i in range(profile.iterations):
            io_work = ctx.rng.jitter(f"{label}/io", profile.io_time,
                                     profile.io_rel_std)
            t0 = ctx.now
            yield from ctx.io(io_work)
            t1 = ctx.now
            cpu_work = ctx.rng.jitter(f"{label}/cpu", profile.cpu_burst,
                                      profile.cpu_rel_std)
            yield from ctx.cpu(cpu_work)
            samples.append(LoopSample(i, t1 - t0, ctx.now - t1))
        return samples

    return behavior


def cpu_hog(total_cpu: float = 1e6):
    """The co-located batch job of §6.3: a pure CPU burner."""

    def behavior(ctx) -> Generator:
        done = 0.0
        # Chunked so tenancy changes take effect at realistic granularity.
        step = 5.0
        while done < total_cpu:
            work = min(step, total_cpu - done)
            yield from ctx.cpu(work)
            done += work
        return done

    return behavior
