"""Million-job workload engine: lazy arrival streams, O(1) aggregation.

The paper's testbed served a few hundred jobs; ROADMAP item 1 asks for
the production shape of that load — **10⁵–10⁷ arrivals** from
million-user populations — without ever materialising per-job records.
This module is the generator half of that engine:

* :func:`iter_campaign` lazily synthesizes a campaign described by a
  :class:`ScaleConfig`: a non-homogeneous Poisson arrival process
  (constant, diurnal million-user curve, or bursty flash crowds —
  realised by Lewis–Shedler thinning against the curve's peak rate),
  heavy-tailed runtimes (exponential, lognormal, or bounded Pareto), and
  a mixed batch/interactive/MPI population.
* :class:`CampaignStats` folds any arrival stream into bounded state:
  exact counts/sums plus :class:`~repro.obs.telemetry.QuantileSketch`
  summaries of runtimes and inter-arrival gaps.  Stats merge exactly,
  so independently-generated shards fold to the same aggregates as one
  sequential pass — the property the sharded runner's
  ``plan/run_cell/merge`` seam and the CI streamed-vs-eager gate rely
  on.

Determinism: every random draw comes from a *fixed* set of named
substreams (no per-job stream names, which would grow the stream cache
linearly) and is taken in array batches of ``ScaleConfig.chunk`` draws.
The chunk size is therefore part of the determinism contract: it only
changes how many values are drawn per request, never their sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, Optional

from ..jdl import (
    JobCategory,
    JobDescription,
    JobFlavor,
    MachineAccess,
    StreamingMode,
)
from ..obs.telemetry import QuantileSketch
from ..sim import RandomStreams
from .mixes import JobArrival

#: Arrival-curve names accepted by :class:`ScaleConfig`.
CURVES = ("constant", "diurnal", "flash")

#: Runtime-distribution names accepted by :class:`ScaleConfig`.
RUNTIME_DISTS = ("exponential", "lognormal", "pareto")


@dataclass
class ScaleConfig:
    """Shape of a synthesized large-scale campaign."""

    #: Total arrivals to generate.
    jobs: int = 1_000_000
    #: Baseline arrival rate (jobs/second of sim time).
    base_rate: float = 100.0
    #: Arrival curve: one of :data:`CURVES`.
    curve: str = "diurnal"
    #: Diurnal curve: period and relative swing (rate varies by
    #: ``1 ± amplitude`` across the day, peaking at ``peak_time``).
    day_seconds: float = 86_400.0
    diurnal_amplitude: float = 0.8
    peak_time: float = 14 * 3600.0
    #: Flash-crowd curve: a burst of ``flash_multiplier`` × base rate for
    #: ``flash_duration`` seconds every ``flash_every`` seconds.
    flash_every: float = 3_600.0
    flash_duration: float = 120.0
    flash_multiplier: float = 20.0
    #: Synthetic user population (owners are drawn uniformly from it).
    users: int = 1_000_000
    #: Population mix.
    interactive_fraction: float = 0.6
    shared_fraction: float = 0.7
    parallel_fraction: float = 0.05
    max_nodes: int = 8
    performance_loss: int = 10
    #: Runtime model: one of :data:`RUNTIME_DISTS`, with per-class means.
    runtime_dist: str = "lognormal"
    batch_runtime_mean: float = 1_800.0
    interactive_runtime_mean: float = 120.0
    #: Lognormal shape (sigma of the underlying normal).
    lognormal_sigma: float = 1.5
    #: Pareto tail index (must be > 1 for a finite mean).
    pareto_shape: float = 1.8
    #: Hard cap on any runtime (keeps bounded-Pareto moments finite).
    runtime_cap: float = 172_800.0
    #: RNG batch size (part of the determinism contract — see module doc).
    chunk: int = 8_192

    def validate(self) -> None:
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0")
        if self.curve not in CURVES:
            raise ValueError(f"curve must be one of {CURVES}, "
                             f"got {self.curve!r}")
        if self.runtime_dist not in RUNTIME_DISTS:
            raise ValueError(f"runtime_dist must be one of {RUNTIME_DISTS}, "
                             f"got {self.runtime_dist!r}")
        if self.base_rate <= 0:
            raise ValueError("base_rate must be > 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.pareto_shape <= 1.0:
            raise ValueError("pareto_shape must be > 1 (finite mean)")
        if self.chunk < 1:
            raise ValueError("chunk must be >= 1")

    # -- the arrival-rate curve ------------------------------------------
    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (jobs/s) at sim time ``t``."""
        if self.curve == "constant":
            return self.base_rate
        if self.curve == "diurnal":
            phase = 2.0 * math.pi * (t - self.peak_time) / self.day_seconds
            return self.base_rate * (1.0
                                     + self.diurnal_amplitude * math.cos(phase))
        # flash: baseline with periodic multiplicative bursts.
        in_burst = (t % self.flash_every) < self.flash_duration
        return self.base_rate * (self.flash_multiplier if in_burst else 1.0)

    def peak_rate(self) -> float:
        """An upper bound of :meth:`rate_at` (the thinning envelope)."""
        if self.curve == "constant":
            return self.base_rate
        if self.curve == "diurnal":
            return self.base_rate * (1.0 + self.diurnal_amplitude)
        return self.base_rate * self.flash_multiplier


class _BatchedDraws:
    """Sequential draws from one named substream, fetched in arrays.

    Drawing one value at a time through :class:`RandomStreams` costs a
    dict lookup and a Python-level numpy call per draw; fetching
    ``chunk``-sized arrays amortises that ~50× while producing the exact
    same value sequence (numpy generators are sequential streams).
    """

    __slots__ = ("_gen", "_kind", "_args", "_chunk", "_buf", "_i")

    def __init__(self, rng: RandomStreams, name: str, kind: str,
                 args: tuple, chunk: int) -> None:
        self._gen = rng.stream(name)
        self._kind = kind
        self._args = args
        self._chunk = chunk
        self._buf: Any = None
        self._i = 0

    def __call__(self) -> float:
        if self._buf is None or self._i >= len(self._buf):
            self._buf = getattr(self._gen, self._kind)(*self._args,
                                                       size=self._chunk)
            self._i = 0
        value = self._buf[self._i]
        self._i += 1
        return float(value)


def _runtime_draw(rng: RandomStreams, config: ScaleConfig, name: str,
                  mean: float) -> "_BatchedDraws":
    """A batched sampler for the configured runtime distribution with the
    requested mean (each class keeps its calibrated average load)."""
    if config.runtime_dist == "exponential":
        return _BatchedDraws(rng, name, "exponential", (mean,), config.chunk)
    if config.runtime_dist == "lognormal":
        sigma = config.lognormal_sigma
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)  =>  solve for mu.
        mu = math.log(mean) - 0.5 * sigma * sigma
        return _BatchedDraws(rng, name, "lognormal", (mu, sigma),
                             config.chunk)
    # Bounded Pareto: scale x_m chosen so the *unbounded* mean matches
    # (shape/(shape-1)) * x_m = mean; the cap then trims the far tail.
    shape = config.pareto_shape
    x_m = mean * (shape - 1.0) / shape
    sampler = _BatchedDraws(rng, name, "pareto", (shape,), config.chunk)

    class _ParetoDraws:
        __slots__ = ()

        def __call__(self) -> float:
            return (sampler() + 1.0) * x_m

    return _ParetoDraws()  # type: ignore[return-value]


def iter_campaign(rng: RandomStreams, config: Optional[ScaleConfig] = None,
                  stream: str = "scale",
                  start: float = 0.0) -> Iterator[JobArrival]:
    """Lazily synthesize a campaign's arrivals in time order.

    ``stream`` namespaces the RNG substreams (shards use distinct names
    to stay independent); ``start`` offsets the first arrival, letting a
    sharded plan cover consecutive wall-time windows.
    """
    config = config or ScaleConfig()
    config.validate()

    peak = config.peak_rate()
    gaps = _BatchedDraws(rng, f"{stream}/gap", "exponential",
                         (1.0 / peak,), config.chunk)
    thins = _BatchedDraws(rng, f"{stream}/thin", "uniform", (0.0, 1.0),
                          config.chunk)
    classes = _BatchedDraws(rng, f"{stream}/class", "uniform", (0.0, 1.0),
                            config.chunk)
    shareds = _BatchedDraws(rng, f"{stream}/shared", "uniform", (0.0, 1.0),
                            config.chunk)
    parallels = _BatchedDraws(rng, f"{stream}/parallel", "uniform",
                              (0.0, 1.0), config.chunk)
    nodes_draw = _BatchedDraws(rng, f"{stream}/nodes", "uniform", (0.0, 1.0),
                               config.chunk)
    users = _BatchedDraws(rng, f"{stream}/user", "uniform", (0.0, 1.0),
                          config.chunk)
    batch_rt = _runtime_draw(rng, config, f"{stream}/run/batch",
                             config.batch_runtime_mean)
    inter_rt = _runtime_draw(rng, config, f"{stream}/run/int",
                             config.interactive_runtime_mean)

    t = start
    emitted = 0
    while emitted < config.jobs:
        # Lewis–Shedler thinning: candidate points at the peak rate,
        # accepted with probability rate(t)/peak — an exact sampler for
        # the non-homogeneous Poisson process defined by rate_at().
        t += gaps()
        if thins() * peak >= config.rate_at(t):
            continue
        interactive = classes() < config.interactive_fraction
        owner = f"user-{int(users() * config.users):07d}"
        if interactive:
            runtime = min(max(inter_rt(), 1.0), config.runtime_cap)
            shared = shareds() < config.shared_fraction
            parallel = parallels() < config.parallel_fraction
            nodes, flavor = 1, JobFlavor.SEQUENTIAL
            if parallel and config.max_nodes > 1:
                nodes = 2 + int(nodes_draw() * (config.max_nodes - 1))
                flavor = JobFlavor.MPICH_G2
            job = JobDescription(
                executable="interactive_sim",
                owner=owner,
                category=JobCategory.INTERACTIVE,
                flavor=flavor,
                node_number=nodes,
                machine_access=(MachineAccess.SHARED if shared
                                else MachineAccess.EXCLUSIVE),
                performance_loss=config.performance_loss if shared else 0,
                streaming_mode=StreamingMode.FAST,
                estimated_runtime=runtime,
                job_id=f"{stream}-{emitted:08d}",
            )
        else:
            runtime = min(max(batch_rt(), 1.0), config.runtime_cap)
            job = JobDescription(
                executable="batch_sim",
                owner=owner,
                category=JobCategory.BATCH,
                estimated_runtime=runtime,
                job_id=f"{stream}-{emitted:08d}",
            )
        yield JobArrival(t, job, runtime)
        emitted += 1


class CampaignStats:
    """Bounded streaming aggregates of an arrival stream.

    Everything a scale experiment reports fits in O(sketch) memory:
    exact class/access/flavor counts, exact runtime totals, and
    mergeable quantile sketches for runtimes and inter-arrival gaps.
    ``merge`` is exact (sketch bucket counts add), so shard-and-fold
    equals one sequential pass — the runner's determinism contract.
    """

    __slots__ = ("jobs", "batch", "interactive", "shared", "parallel",
                 "node_count", "first_at", "last_at", "total_runtime",
                 "runtime_sketch", "gap_sketch", "_prev_at")

    def __init__(self) -> None:
        self.jobs = 0
        self.batch = 0
        self.interactive = 0
        self.shared = 0
        self.parallel = 0
        self.node_count = 0
        self.first_at = math.inf
        self.last_at = -math.inf
        self.total_runtime = 0.0
        self.runtime_sketch = QuantileSketch()
        self.gap_sketch = QuantileSketch()
        self._prev_at: Optional[float] = None

    def observe(self, arrival: JobArrival) -> None:
        job = arrival.job
        self.jobs += 1
        if job.category is JobCategory.INTERACTIVE:
            self.interactive += 1
        else:
            self.batch += 1
        if job.machine_access is MachineAccess.SHARED:
            self.shared += 1
        if job.flavor is not JobFlavor.SEQUENTIAL:
            self.parallel += 1
        self.node_count += job.node_number
        if arrival.at < self.first_at:
            self.first_at = arrival.at
        if arrival.at > self.last_at:
            self.last_at = arrival.at
        self.total_runtime += arrival.runtime
        self.runtime_sketch.observe(arrival.runtime)
        if self._prev_at is not None:
            self.gap_sketch.observe(arrival.at - self._prev_at)
        self._prev_at = arrival.at

    # -- fold algebra ----------------------------------------------------
    def merge(self, other: "CampaignStats") -> "CampaignStats":
        """Fold ``other`` (a later/independent shard) into this one.

        Gap sketches merge their *within-shard* gaps; the single seam
        gap between two shards is intentionally not synthesized (shards
        of a sharded plan cover disjoint windows, so the seam gap is a
        plan artifact, not workload signal).
        """
        self.jobs += other.jobs
        self.batch += other.batch
        self.interactive += other.interactive
        self.shared += other.shared
        self.parallel += other.parallel
        self.node_count += other.node_count
        self.first_at = min(self.first_at, other.first_at)
        self.last_at = max(self.last_at, other.last_at)
        self.total_runtime += other.total_runtime
        self.runtime_sketch.merge(other.runtime_sketch)
        self.gap_sketch.merge(other.gap_sketch)
        self._prev_at = None  # seam: do not bridge shard boundaries
        return self

    @property
    def span(self) -> float:
        """Seconds between first and last arrival (0 when < 2 jobs)."""
        if self.jobs < 2:
            return 0.0
        return self.last_at - self.first_at

    @property
    def arrival_rate(self) -> float:
        """Mean observed arrival rate over the campaign span."""
        if self.span <= 0.0:
            return 0.0
        return (self.jobs - 1) / self.span

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able, mergeable form (the cell payload of scale runs)."""
        return {
            "jobs": self.jobs,
            "batch": self.batch,
            "interactive": self.interactive,
            "shared": self.shared,
            "parallel": self.parallel,
            "node_count": self.node_count,
            "first_at": self.first_at if self.jobs else None,
            "last_at": self.last_at if self.jobs else None,
            "total_runtime": self.total_runtime,
            "runtime_sketch": self.runtime_sketch.to_dict(),
            "gap_sketch": self.gap_sketch.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignStats":
        stats = cls()
        stats.jobs = int(data["jobs"])
        stats.batch = int(data["batch"])
        stats.interactive = int(data["interactive"])
        stats.shared = int(data["shared"])
        stats.parallel = int(data["parallel"])
        stats.node_count = int(data["node_count"])
        stats.first_at = (float(data["first_at"])
                          if data.get("first_at") is not None else math.inf)
        stats.last_at = (float(data["last_at"])
                         if data.get("last_at") is not None else -math.inf)
        stats.total_runtime = float(data["total_runtime"])
        stats.runtime_sketch = QuantileSketch.from_dict(
            data["runtime_sketch"])
        stats.gap_sketch = QuantileSketch.from_dict(data["gap_sketch"])
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<CampaignStats jobs={self.jobs} "
                f"interactive={self.interactive} span={self.span:.6g}s>")


def summarize_campaign(arrivals: Iterable[JobArrival]) -> CampaignStats:
    """Fold any arrival stream into bounded :class:`CampaignStats`.

    Works identically on a materialised list (the eager path) and a lazy
    generator (the streaming path); the CI scale gate asserts both
    produce the same aggregates.
    """
    stats = CampaignStats()
    for arrival in arrivals:
        stats.observe(arrival)
    return stats


__all__ = [
    "CURVES",
    "CampaignStats",
    "RUNTIME_DISTS",
    "ScaleConfig",
    "iter_campaign",
    "summarize_campaign",
]
