"""Workload generators and the paper's measurement applications."""

from .apps import (
    cpu_bound_app,
    immediate_output_app,
    interactive_console_app,
    progress_app,
    steerable_simulation,
)
from .loopapp import LoopSample, cpu_hog, make_loop_app
from .mixes import JobArrival, MixConfig, generate_mix, replay
from .pingpong import PAPER_SEQUENCES, PAPER_SIZES, run_sequences
from .traces import load_trace, save_trace

__all__ = [
    "JobArrival",
    "LoopSample",
    "MixConfig",
    "PAPER_SEQUENCES",
    "PAPER_SIZES",
    "cpu_bound_app",
    "cpu_hog",
    "generate_mix",
    "immediate_output_app",
    "interactive_console_app",
    "load_trace",
    "save_trace",
    "make_loop_app",
    "progress_app",
    "replay",
    "run_sequences",
    "steerable_simulation",
]
