"""Workload generators and the paper's measurement applications."""

from .apps import (
    cpu_bound_app,
    immediate_output_app,
    interactive_console_app,
    progress_app,
    steerable_simulation,
)
from .loopapp import LoopSample, cpu_hog, make_loop_app
from .mixes import (
    JobArrival,
    MixConfig,
    generate_mix,
    iter_mix,
    replay,
    replay_stream,
)
from .pingpong import PAPER_SEQUENCES, PAPER_SIZES, run_sequences
from .scale import (
    CampaignStats,
    ScaleConfig,
    iter_campaign,
    summarize_campaign,
)
from .traces import iter_trace, load_trace, save_trace, trace_header

__all__ = [
    "CampaignStats",
    "JobArrival",
    "LoopSample",
    "MixConfig",
    "PAPER_SEQUENCES",
    "PAPER_SIZES",
    "ScaleConfig",
    "cpu_bound_app",
    "cpu_hog",
    "generate_mix",
    "immediate_output_app",
    "interactive_console_app",
    "iter_campaign",
    "iter_mix",
    "iter_trace",
    "load_trace",
    "make_loop_app",
    "progress_app",
    "replay",
    "replay_stream",
    "run_sequences",
    "save_trace",
    "steerable_simulation",
    "summarize_campaign",
    "trace_header",
]
