"""The sharded experiment executor.

Execution model:

1. ``spec.plan(config)`` yields the canonical ordered cell list;
2. cells present in the :class:`~repro.runner.cache.ResultCache` are
   loaded (0 simulation);
3. missing cells are executed — serially, or fanned out across a
   ``ProcessPoolExecutor`` when ``parallel > 1``;
4. payloads are merged **in plan order**, never completion order, so a
   parallel run is bit-identical to a serial run of the same config.

The engine reports a :class:`RunStats` in
``result.data["runner"]`` (wall-clock, cached/computed split, serial-
equivalent cell seconds, speedup) — deliberately *outside* the rendered
tables/notes so that timing noise can never break output determinism.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from .cache import ResultCache
from .spec import CellKey, get_spec

Progress = Callable[[str], None]


@dataclass(frozen=True)
class CellOutcome:
    """How one cell was satisfied."""

    key: CellKey
    elapsed: float
    cached: bool


@dataclass
class RunStats:
    """Aggregate execution statistics for one experiment run."""

    experiment_id: str
    parallel: int
    wall_seconds: float = 0.0
    cells: List[CellOutcome] = field(default_factory=list)

    @property
    def cells_total(self) -> int:
        return len(self.cells)

    @property
    def cells_cached(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def cells_computed(self) -> int:
        return sum(1 for c in self.cells if not c.cached)

    @property
    def cell_seconds(self) -> float:
        """Serial-equivalent simulation time: the sum every cell *took*
        (cached cells contribute the time recorded when first computed)."""
        return sum(c.elapsed for c in self.cells)

    @property
    def speedup(self) -> float:
        """Serial-equivalent seconds / wall seconds (>1 = time saved by
        sharding and/or cache hits)."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.cell_seconds / self.wall_seconds

    def describe(self) -> str:
        return (f"{self.experiment_id}: {self.cells_total} cells "
                f"({self.cells_computed} computed, {self.cells_cached} "
                f"cached) in {self.wall_seconds:.2f}s wall; "
                f"serial-equivalent {self.cell_seconds:.2f}s; "
                f"speedup {self.speedup:.2f}x "
                f"(parallel={self.parallel})")


def _execute_cell(experiment_id: str, config: Any, key: CellKey,
                  telemetry: bool = False,
                  chaos: Optional[Dict[str, Any]] = None) -> Any:
    """Worker-side entry point (module-level: picklable by name).

    With ``telemetry=True`` the cell runs under a
    :func:`repro.obs.telemetry_scope`, so every environment the cell
    builds gets a metrics registry; the merged snapshot (a plain JSON-
    ready dict — picklable across the process pool) is returned as the
    4th element and ``None`` otherwise.  Recording is observation-only,
    so the payload is byte-identical either way.

    ``chaos`` (a :class:`repro.obs.ChaosSchedule` ``to_dict``) wraps the
    cell in a :func:`repro.obs.control_scope`, replaying the schedule's
    steering verbs at their sim-times in every environment the cell
    builds.  Chaos perturbs results by design, so the engine never
    caches chaos-run payloads (see :func:`run_experiment`).
    """
    spec = get_spec(experiment_id)
    t0 = time.perf_counter()

    def _run() -> Any:
        if chaos is not None:
            from ..obs import ChaosSchedule, control_scope

            with control_scope(schedule=ChaosSchedule.from_dict(chaos)):
                return spec.run_cell(config, key)
        return spec.run_cell(config, key)

    if telemetry:
        from ..obs import scope_snapshot, telemetry_scope

        with telemetry_scope() as registries:
            payload = _run()
        snapshot = scope_snapshot(registries)
    else:
        payload = _run()
        snapshot = None
    return key, payload, time.perf_counter() - t0, snapshot


def default_parallelism() -> int:
    """A conservative default worker count for ``--parallel 0`` (auto)."""
    return max(1, (os.cpu_count() or 1))


def run_experiment(experiment_id: str,
                   config: Any = None,
                   *,
                   quick: bool = False,
                   parallel: int = 1,
                   cache: Union[ResultCache, str, None] = None,
                   progress: Optional[Progress] = None,
                   telemetry: bool = False,
                   chaos: Optional[Dict[str, Any]] = None) -> Any:
    """Run one experiment through the sharded engine.

    Parameters
    ----------
    config:
        Experiment config; defaults to the spec's paper-scale (or
        ``quick``) factory.
    parallel:
        Worker processes.  ``<= 1`` runs in-process (no executor, no
        pickling); ``0`` auto-sizes to the machine.
    cache:
        A :class:`ResultCache`, a directory path, or None to disable.
    progress:
        Per-cell progress callback (e.g. ``print``).
    telemetry:
        Collect a sim-time telemetry snapshot per cell (see
        :mod:`repro.obs.telemetry`).  Snapshots travel through the cell
        cache; a cached cell without a stored snapshot is treated as a
        miss so telemetry-on runs always yield complete metrics.  The
        merged snapshot lands in ``result.data["telemetry"]`` — outside
        the rendered output, which stays byte-identical.
    chaos:
        A chaos schedule as a plain dict (``ChaosSchedule.to_dict``) to
        replay inside every cell.  A non-empty schedule steers the
        simulation, so the cell cache is bypassed entirely — chaos
        payloads must never be stored under (or served from) the
        unperturbed cache key.  An *empty* schedule still attaches an
        (idle) controller to every environment — by the kernel contract
        that changes nothing, which is exactly what the CI idle-server
        gate proves by diffing the golden — and keeps the cache usable.
    """
    spec = get_spec(experiment_id)
    if config is None:
        config = spec.make_config(quick=quick)
    if chaos is not None and chaos.get("actions"):
        cache = None
    if isinstance(cache, str):
        cache = ResultCache(cache)
    if parallel == 0:
        parallel = default_parallelism()

    say = progress or (lambda line: None)
    cells = list(spec.plan(config))
    stats = RunStats(experiment_id=experiment_id, parallel=max(1, parallel))
    payloads: Dict[CellKey, Any] = {}
    t_wall = time.perf_counter()

    # -- phase 1: cache lookups -----------------------------------------
    snapshots: Dict[CellKey, Any] = {}
    missing: List[CellKey] = []
    for key in cells:
        record = cache.get(spec, config, key) if cache is not None else None
        if record is not None and (not telemetry or "telemetry" in record):
            payloads[key] = record["payload"]
            if telemetry:
                snapshots[key] = record["telemetry"]
            stats.cells.append(CellOutcome(key, record.get("elapsed", 0.0),
                                           cached=True))
            say(f"[{experiment_id}] {'/'.join(key)}: cached "
                f"(first computed in {record.get('elapsed', 0.0):.2f}s)")
        else:
            # A hit without a stored telemetry snapshot is treated as a
            # miss when telemetry is requested: re-simulating is the only
            # way to observe the cell (payloads stay identical).
            missing.append(key)

    # -- phase 2: simulate missing cells --------------------------------
    def _complete(key: CellKey, payload: Any, elapsed: float,
                  snapshot: Any, done: int) -> None:
        payloads[key] = payload
        if telemetry:
            snapshots[key] = snapshot
        stats.cells.append(CellOutcome(key, elapsed, cached=False))
        if cache is not None:
            cache.put(spec, config, key, payload, elapsed,
                      telemetry=snapshot)
        say(f"[{experiment_id}] {'/'.join(key)}: computed in "
            f"{elapsed:.2f}s ({done}/{len(cells)})")

    if missing and parallel > 1:
        executor = None
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(parallel, len(missing)))
            futures = {executor.submit(_execute_cell, experiment_id,
                                       config, key, telemetry, chaos): key
                       for key in missing}
            pending = set(futures)
            while pending:
                finished, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                for future in finished:
                    key, payload, elapsed, snapshot = future.result()
                    _complete(key, payload, elapsed, snapshot,
                              len(payloads))
        except (OSError, PermissionError) as exc:
            # Environments without working process pools (restricted
            # sandboxes) fall back to in-process execution.
            say(f"[{experiment_id}] process pool unavailable "
                f"({exc}); falling back to serial execution")
            for key in [k for k in missing if k not in payloads]:
                _, payload, elapsed, snapshot = _execute_cell(
                    experiment_id, config, key, telemetry, chaos)
                _complete(key, payload, elapsed, snapshot,
                          len(payloads) + 1)
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
    else:
        for key in missing:
            _, payload, elapsed, snapshot = _execute_cell(
                experiment_id, config, key, telemetry, chaos)
            _complete(key, payload, elapsed, snapshot, len(payloads))

    # -- phase 3: deterministic merge -----------------------------------
    ordered = {key: payloads[key] for key in cells}  # plan order, always
    stats.cells.sort(key=lambda c: cells.index(c.key))
    result = spec.merge(config, ordered)
    stats.wall_seconds = time.perf_counter() - t_wall
    result.data["runner"] = stats
    if telemetry:
        from ..obs import merge_snapshots

        # Plan order, never completion order: the merged snapshot of a
        # parallel run is identical to the serial (and cache-hit) one.
        cell_snaps = {"/".join(key): snapshots[key] for key in cells}
        result.data["telemetry"] = {
            "cells": cell_snaps,
            "merged": merge_snapshots([snapshots[key] for key in cells]),
        }
    return result


__all__ = ["CellOutcome", "RunStats", "default_parallelism",
           "run_experiment"]
