"""Content-addressed on-disk cache of completed experiment cells.

A cell's cache key is a blake2b hash of a canonical JSON document::

    {
      "cache_version": <runner format version>,
      "experiment":    <experiment id>,
      "salt":          <spec.cache_salt — bumped on code changes>,
      "config":        <config.to_key_dict() — semantic fields only>,
      "calibration":   <flattened calibration dataclass tree>,
      "cell":          [<cell key parts>]
    }

Everything that can change a cell's payload is in the document; nothing
else is (no timestamps, no hostnames, no dict ordering — keys are
sorted).  Re-running with the same config therefore only simulates
missing cells, and a ``--quick`` run upgraded to full scale re-uses
nothing by accident because the sample counts live in the config dict.

Entries are stored as ``<dir>/<experiment>/<hash>.pkl`` pickles with a
small metadata header, so ``repro cache ls`` can describe them without
deserialising payloads.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import time
from typing import Any, Dict, Iterator, List, Optional

from .spec import CellKey, ExperimentSpec

#: Bump to invalidate every cache entry (runner format change).
CACHE_VERSION = 1

_PICKLE_PROTOCOL = 4


def calibration_fingerprint(calibration: Any) -> Dict[str, Any]:
    """A calibration dataclass tree flattened to JSON-able primitives."""
    if dataclasses.is_dataclass(calibration):
        return {f.name: calibration_fingerprint(getattr(calibration, f.name))
                for f in dataclasses.fields(calibration)}
    if isinstance(calibration, dict):
        return {str(k): calibration_fingerprint(v)
                for k, v in calibration.items()}
    if isinstance(calibration, (list, tuple)):
        return [calibration_fingerprint(v) for v in calibration]
    return calibration


def _config_key_dict(config: Any) -> Dict[str, Any]:
    """The config's semantic identity (prefers ``to_key_dict``)."""
    to_key = getattr(config, "to_key_dict", None)
    if callable(to_key):
        return to_key()
    if dataclasses.is_dataclass(config):  # fallback for ad-hoc configs
        return {f.name: calibration_fingerprint(getattr(config, f.name))
                for f in dataclasses.fields(config)
                if f.name != "calibration"}
    raise TypeError(f"config {type(config).__name__} has no to_key_dict() "
                    f"and is not a dataclass")


def cache_key(spec: ExperimentSpec, config: Any, cell: CellKey) -> str:
    """Stable hex digest identifying one cell's result."""
    document = {
        "cache_version": CACHE_VERSION,
        "experiment": spec.experiment_id,
        "salt": spec.cache_salt,
        "config": _config_key_dict(config),
        "calibration": calibration_fingerprint(
            getattr(config, "calibration", None)),
        "cell": list(cell),
    }
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


@dataclasses.dataclass(frozen=True)
class CacheEntry:
    """Metadata of one stored cell (payload not loaded)."""

    experiment_id: str
    digest: str
    cell: CellKey
    elapsed: float
    created: float
    size_bytes: int
    path: str


class ResultCache:
    """Directory-backed cell cache.  Safe to share between processes:
    writes go through a per-process temp file + atomic rename."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)

    # -- paths -----------------------------------------------------------
    def _experiment_dir(self, experiment_id: str) -> str:
        # Experiment ids are shell-safe slugs; keep subdirs readable.
        return os.path.join(self.directory, experiment_id)

    def _path(self, experiment_id: str, digest: str) -> str:
        return os.path.join(self._experiment_dir(experiment_id),
                            f"{digest}.pkl")

    # -- core API --------------------------------------------------------
    def get(self, spec: ExperimentSpec, config: Any,
            cell: CellKey) -> Optional[Dict[str, Any]]:
        """The stored record for a cell, or None on miss/corruption."""
        path = self._path(spec.experiment_id, cache_key(spec, config, cell))
        try:
            with open(path, "rb") as fh:
                record = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if not isinstance(record, dict) or "payload" not in record:
            return None
        if tuple(record.get("cell", ())) != tuple(cell):
            return None  # hash collision or tampering: treat as miss
        return record

    def put(self, spec: ExperimentSpec, config: Any, cell: CellKey,
            payload: Any, elapsed: float,
            telemetry: Optional[Dict[str, Any]] = None) -> str:
        """Store a cell record.  ``telemetry`` (a
        :meth:`repro.obs.Telemetry.snapshot` dict) rides along when the
        cell was computed under a telemetry scope; the cache *key* is
        unaffected, so telemetry-on and telemetry-off runs share entries
        (a hit without a stored snapshot is simply re-simulated when
        telemetry is requested)."""
        digest = cache_key(spec, config, cell)
        directory = self._experiment_dir(spec.experiment_id)
        os.makedirs(directory, exist_ok=True)
        record = {
            "cache_version": CACHE_VERSION,
            "experiment": spec.experiment_id,
            "salt": spec.cache_salt,
            "cell": tuple(cell),
            "elapsed": float(elapsed),
            "created": time.time(),  # simlint: disable=wallclock -- host-side cache metadata; never read back into sim state
            "payload": payload,
        }
        if telemetry is not None:
            record["telemetry"] = telemetry
        path = self._path(spec.experiment_id, digest)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            pickle.dump(record, fh, protocol=_PICKLE_PROTOCOL)
        os.replace(tmp, path)  # atomic on POSIX
        return digest

    # -- management (repro cache {ls,clear}) -----------------------------
    def entries(self,
                experiment_id: Optional[str] = None) -> Iterator[CacheEntry]:
        """Iterate stored cells (metadata only), sorted for stable output."""
        if not os.path.isdir(self.directory):
            return
        experiments = ([experiment_id] if experiment_id
                       else sorted(os.listdir(self.directory)))
        for exp in experiments:
            exp_dir = self._experiment_dir(exp)
            if not os.path.isdir(exp_dir):
                continue
            for fname in sorted(os.listdir(exp_dir)):
                if not fname.endswith(".pkl"):
                    continue
                path = os.path.join(exp_dir, fname)
                try:
                    with open(path, "rb") as fh:
                        record = pickle.load(fh)
                    size = os.path.getsize(path)
                except (OSError, pickle.UnpicklingError, EOFError,
                        AttributeError, ImportError, IndexError):
                    continue
                if not isinstance(record, dict):
                    continue
                yield CacheEntry(
                    experiment_id=exp,
                    digest=fname[:-len(".pkl")],
                    cell=tuple(record.get("cell", ())),
                    elapsed=float(record.get("elapsed", 0.0)),
                    created=float(record.get("created", 0.0)),
                    size_bytes=size,
                    path=path)

    def clear(self, experiment_id: Optional[str] = None) -> int:
        """Delete stored cells (all, or one experiment's); returns count."""
        removed = 0
        for entry in list(self.entries(experiment_id)):
            try:
                os.remove(entry.path)
                removed += 1
            except OSError:
                pass
        # Prune now-empty experiment directories.
        if os.path.isdir(self.directory):
            for exp in os.listdir(self.directory):
                exp_dir = self._experiment_dir(exp)
                if os.path.isdir(exp_dir) and not os.listdir(exp_dir):
                    try:
                        os.rmdir(exp_dir)
                    except OSError:
                        pass
        return removed

    def summary(self) -> List[Dict[str, Any]]:
        """Per-experiment {experiment, cells, bytes, cell_seconds} rows."""
        rows: Dict[str, Dict[str, Any]] = {}
        for entry in self.entries():
            row = rows.setdefault(entry.experiment_id, {
                "experiment": entry.experiment_id, "cells": 0,
                "bytes": 0, "cell_seconds": 0.0})
            row["cells"] += 1
            row["bytes"] += entry.size_bytes
            row["cell_seconds"] += entry.elapsed
        return [rows[k] for k in sorted(rows)]


__all__ = ["CACHE_VERSION", "CacheEntry", "ResultCache", "cache_key",
           "calibration_fingerprint"]
