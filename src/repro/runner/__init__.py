"""Parallel experiment-execution engine with content-addressed caching.

The evaluation's headline numbers are averages over many independent
replications.  Each experiment decomposes into *cells* — the smallest
independently simulable unit (a ``seed x method x scenario`` point for
Table I, a ``mechanism x payload-size`` point for Figures 6/7, one knob
value for an ablation).  Cells share nothing: every cell builds its own
:class:`~repro.sim.Environment` from a seed derived purely from the
(config, cell-key) pair, so results are independent of execution order
and of which process computed them.

* :mod:`repro.runner.spec` — the :class:`ExperimentSpec` contract
  (plan / run_cell / merge) and the experiment registry;
* :mod:`repro.runner.cache` — the on-disk result cache, keyed by a
  stable hash of (config key-dict, calibration fingerprint, cell key,
  code-version salt);
* :mod:`repro.runner.engine` — the sharded executor: fans missing cells
  out over a :class:`concurrent.futures.ProcessPoolExecutor`, merges in
  deterministic cell order (serial and parallel runs are bit-identical),
  and reports wall-clock/speedup statistics.
"""

from .cache import ResultCache, cache_key, calibration_fingerprint
from .engine import CellOutcome, RunStats, run_experiment
from .spec import CellKey, ExperimentSpec, all_specs, get_spec, register

__all__ = [
    "CellKey",
    "CellOutcome",
    "ExperimentSpec",
    "ResultCache",
    "RunStats",
    "all_specs",
    "cache_key",
    "calibration_fingerprint",
    "get_spec",
    "register",
    "run_experiment",
]
