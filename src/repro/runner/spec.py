"""The experiment contract: plan cells, run one cell, merge payloads.

An :class:`ExperimentSpec` turns a monolithic ``run_<experiment>()``
function into three pure pieces:

``plan(config) -> [cell_key, ...]``
    The deterministic list of cells, in canonical (merge) order.
``run_cell(config, cell_key) -> payload``
    Simulate exactly one cell.  Must depend only on ``(config, key)`` —
    never on process identity, wall-clock, or sibling cells — and must
    return a picklable payload (``Series``, dataclasses of ``Series``,
    plain tuples/dicts).
``merge(config, {cell_key: payload}) -> ExperimentResult``
    Assemble tables/checks/notes.  The engine always passes payloads for
    every planned cell and iterates in plan order, so merged output is
    identical whether the cells were computed serially, in parallel, or
    pulled from the cache.

Experiment modules register their spec at import time; the registry is
populated by importing :mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

#: A cell identifier: a tuple of short strings, e.g. ``("campus", "glogin")``
#: or ``("agents-fast", "10000")``.  Tuples of strings keep keys stable,
#: order-comparable, JSON-serialisable, and safe to embed in cache paths.
CellKey = Tuple[str, ...]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: how to shard it and how to reassemble."""

    experiment_id: str
    #: Zero-argument factory for the default (full paper-scale) config.
    config_factory: Callable[[], Any]
    #: ``config -> ordered cell keys``.
    plan: Callable[[Any], List[CellKey]]
    #: ``(config, key) -> picklable payload``.
    run_cell: Callable[[Any, CellKey], Any]
    #: ``(config, {key: payload}) -> ExperimentResult``.
    merge: Callable[[Any, Dict[CellKey, Any]], Any]
    #: Bump when the simulation code behind this experiment changes in a
    #: result-affecting way; stale cache entries then miss automatically.
    cache_salt: str = "v1"
    #: Factory for the reduced-sample CI configuration (``--quick``).
    quick_config_factory: Callable[[], Any] = field(default=None)  # type: ignore[assignment]

    def make_config(self, quick: bool = False) -> Any:
        if quick and self.quick_config_factory is not None:
            return self.quick_config_factory()
        return self.config_factory()


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register (or idempotently re-register) an experiment spec."""
    existing = _REGISTRY.get(spec.experiment_id)
    if existing is not None and existing is not spec:
        # Module reloads (tests) re-create structurally equal specs.
        _REGISTRY[spec.experiment_id] = spec
    else:
        _REGISTRY[spec.experiment_id] = spec
    return spec


def _ensure_loaded() -> None:
    """Import the experiment modules so their specs self-register."""
    import repro.experiments  # noqa: F401  (import side effect)


def get_spec(experiment_id: str) -> ExperimentSpec:
    if experiment_id not in _REGISTRY:
        _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; registered: "
            f"{sorted(_REGISTRY)}") from None


def all_specs() -> Dict[str, ExperimentSpec]:
    _ensure_loaded()
    return dict(_REGISTRY)


__all__ = ["CellKey", "ExperimentSpec", "all_specs", "get_spec", "register"]
