"""Sharded-site conveyor: conservative time-window parallel simulation.

The cell engine (:mod:`repro.runner.engine`) fans out *independent*
cells; a multi-site world is one cell because its sites interact.  The
conveyor splits that world along its weakest coupling: sites exchange
work only at **window boundaries**, so each site can simulate a whole
window ``[k*W, (k+1)*W)`` without seeing its peers — the classic
conservative-synchronization argument, with the window playing the role
of lookahead:

* every cross-site message carries a delivery latency ``>= W``, so a
  message *sent* during window ``k`` is *delivered* at the boundary of a
  strictly later window and can never affect the window that produced
  it;
* rounds are barrier-synchronized (BSP): window ``k`` of every site
  completes, messages are routed, then window ``k+1`` starts.

Execution model, mirroring the engine's determinism contract:

1. a :class:`SiteTask` (a module-level function — picklable by name)
   advances one site by one window: ``task(config, site, round, state,
   inbox) -> WindowResult``;
2. per round, the conveyor runs every live site's window — in-process,
   or fanned out over a ``ProcessPoolExecutor`` reused across rounds;
3. results are **gathered in site order**, never completion order, and
   outbox messages are routed sorted by ``(origin, seq)`` — so a
   parallel run is bit-identical to a serial run by construction.

Worker fan-out is therefore *only* a scheduling knob.  It arrives via
``repro run --shard-sites N`` (exported as ``REPRO_SHARD_SITES`` so the
engine's own worker processes inherit it) and never enters any config or
cache key; the decomposition that *does* shape the results — site count,
window length, forward latency — lives in the experiment config and
hashes into the blake2b cell cache like every other config field.

State crossing the barrier must be plain picklable data (dicts, tuples,
lists) — never a live :class:`~repro.sim.Environment`.  A site task that
needs the kernel builds a fresh environment per window from its carried
state.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Message:
    """A cross-site message delivered at a window boundary.

    ``deliver_round`` is the window index whose *start* sees the message;
    the conveyor enforces that it is strictly after the sending round
    (the conservative-lookahead invariant).
    """

    deliver_round: int
    dest_site: int
    payload: Any


@dataclass
class WindowResult:
    """What one site's window hands back across the barrier."""

    state: Any
    outbox: List[Message] = field(default_factory=list)
    #: True once the site has no pending work of its own; the conveyor
    #: stops when every site is quiescent and no messages are in flight.
    quiescent: bool = False


#: ``task(config, site, round_index, state, inbox) -> WindowResult``.
#: ``state`` is ``None`` on the first window (the task initializes).
#: ``inbox`` holds the payloads delivered at this window's start, in
#: deterministic (origin-site, send-order) order.
SiteTask = Callable[[Any, int, int, Any, List[Any]], WindowResult]


def shard_sites_from_env() -> int:
    """Worker fan-out requested via ``repro run --shard-sites N``.

    Read at run time (not import) so the flag reaches conveyor calls
    inside engine worker processes.  Returns 1 (serial) when unset or
    malformed — fan-out is best-effort, results do not depend on it.
    """
    raw = os.environ.get("REPRO_SHARD_SITES", "")  # simlint: disable=environ-read -- fan-out knob only; cannot affect results (see module docstring)
    try:
        n = int(raw)
    except ValueError:
        return 1
    return max(1, n)


def _run_window(task: SiteTask, config: Any, site: int, round_index: int,
                state: Any, inbox: List[Any]) -> WindowResult:
    """Worker-side entry point (module-level: picklable by name)."""
    return task(config, site, round_index, state, inbox)


def run_conveyor(task: SiteTask, config: Any, n_sites: int, *,
                 workers: Optional[int] = None,
                 max_rounds: int = 100_000,
                 progress: Optional[Callable[[str], None]] = None,
                 ) -> List[Any]:
    """Drive ``n_sites`` site tasks to quiescence; return final states.

    ``workers`` defaults to :func:`shard_sites_from_env`.  With any
    worker count the result is identical: rounds are barriers, gathering
    is in site order, and message routing is deterministic.
    """
    if n_sites <= 0:
        raise ValueError(f"n_sites must be positive, got {n_sites}")
    if workers is None:
        workers = shard_sites_from_env()
    workers = min(max(1, workers), n_sites)
    say = progress or (lambda line: None)

    states: List[Any] = [None] * n_sites
    #: (round, site) -> ordered payloads.  Routed sorted by origin site
    #: then send order, so delivery order never depends on scheduling.
    pending: Dict[Tuple[int, int], List[Any]] = {}

    executor: Optional[ProcessPoolExecutor] = None
    if workers > 1:
        try:
            executor = ProcessPoolExecutor(max_workers=workers)
        except (OSError, PermissionError) as exc:
            say(f"[conveyor] process pool unavailable ({exc}); "
                f"running site windows serially")
            executor = None

    try:
        round_index = 0
        while True:
            if round_index >= max_rounds:
                raise RuntimeError(
                    f"conveyor exceeded max_rounds={max_rounds} without "
                    f"quiescing (runaway message loop?)")
            inboxes = [pending.pop((round_index, site), [])
                       for site in range(n_sites)]

            results: List[WindowResult]
            if executor is not None:
                try:
                    futures = [
                        executor.submit(_run_window, task, config, site,
                                        round_index, states[site],
                                        inboxes[site])
                        for site in range(n_sites)
                    ]
                    results = [f.result() for f in futures]  # site order
                except (OSError, PermissionError) as exc:
                    say(f"[conveyor] process pool failed mid-run ({exc}); "
                        f"falling back to serial windows")
                    executor.shutdown(wait=False)
                    executor = None
                    results = [
                        _run_window(task, config, site, round_index,
                                    states[site], inboxes[site])
                        for site in range(n_sites)
                    ]
            else:
                results = [
                    _run_window(task, config, site, round_index,
                                states[site], inboxes[site])
                    for site in range(n_sites)
                ]

            all_quiescent = True
            n_messages = 0
            for site in range(n_sites):  # site order: deterministic routing
                result = results[site]
                states[site] = result.state
                if not result.quiescent:
                    all_quiescent = False
                for message in result.outbox:
                    if message.deliver_round <= round_index:
                        raise ValueError(
                            f"site {site} round {round_index}: message "
                            f"delivery round {message.deliver_round} is not "
                            f"in the future (conservative lookahead "
                            f"violated — forward latency must be >= the "
                            f"window length)")
                    if not 0 <= message.dest_site < n_sites:
                        raise ValueError(
                            f"site {site}: bad dest_site "
                            f"{message.dest_site}")
                    pending.setdefault(
                        (message.deliver_round, message.dest_site),
                        []).append(message.payload)
                    n_messages += 1
            if n_messages:
                say(f"[conveyor] round {round_index}: {n_messages} "
                    f"boundary message(s) in flight")
            if all_quiescent and not pending:
                return states
            round_index += 1
    finally:
        if executor is not None:
            executor.shutdown(wait=True)


__all__ = ["Message", "SiteTask", "WindowResult", "run_conveyor",
           "shard_sites_from_env"]
