"""MPI job structure: subjobs and co-allocation planning.

The paper's interactive parallel jobs are MPICH-P4 (one cluster) and
MPICH-G2 (may span several sites; one Console Agent per subjob, §4).
No message-passing computation is simulated — the evaluation never
measures MPI communication — but the *structure* (how many subjobs land on
which sites, and the one-CA-per-subjob wiring) is faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..jdl import JobDescription, JobFlavor
from .errors import CoAllocationError


@dataclass(frozen=True)
class AllocationSlice:
    """``nodes`` subjobs placed on ``site``."""

    site: str
    nodes: int


@dataclass(frozen=True)
class Subjob:
    """One MPI task of a parallel job."""

    job_id: str
    rank: int
    site: str

    @property
    def label(self) -> str:
        return f"{self.job_id}/rank{self.rank}"


def plan_allocation(job: JobDescription,
                    candidates: Sequence[Tuple[str, int]]) -> List[AllocationSlice]:
    """Choose sites for the job's ``NodeNumber`` tasks.

    ``candidates`` is a sequence of (site, free_cpus), already filtered by
    Requirements and ordered by preference (rank, then the broker's
    randomized tie-break).

    * sequential: first site with a free CPU;
    * MPICH-P4: the job must fit inside one cluster;
    * MPICH-G2: greedy spread over the preference order, multiple sites
      allowed.
    """
    need = job.node_number
    if job.flavor is JobFlavor.MPICH_G2:
        slices: List[AllocationSlice] = []
        remaining = need
        for site, free in candidates:
            if remaining == 0:
                break
            if free <= 0:
                continue
            take = min(free, remaining)
            slices.append(AllocationSlice(site, take))
            remaining -= take
        if remaining > 0:
            raise CoAllocationError(
                f"{job.job_id}: need {need} CPUs, only {need - remaining} free")
        return slices

    # Sequential and MPICH-P4 are single-site.
    for site, free in candidates:
        if free >= need:
            return [AllocationSlice(site, need)]
    raise CoAllocationError(
        f"{job.job_id}: no single site with {need} free CPUs "
        f"(flavor {job.flavor.value})")


def subjobs_for(job: JobDescription,
                slices: Sequence[AllocationSlice]) -> List[Subjob]:
    """Assign MPI ranks to the allocation, rank 0 on the first slice."""
    total = sum(s.nodes for s in slices)
    if total != job.node_number:
        raise CoAllocationError(
            f"{job.job_id}: allocation covers {total} != {job.node_number}")
    subjobs: List[Subjob] = []
    rank = 0
    for piece in slices:
        for _ in range(piece.nodes):
            subjobs.append(Subjob(job.job_id, rank, piece.site))
            rank += 1
    return subjobs


def sites_used(slices: Sequence[AllocationSlice]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for piece in slices:
        out[piece.site] = out.get(piece.site, 0) + piece.nodes
    return out
