"""Worker nodes and the machine context handed to running jobs.

A *behavior* is how this substrate represents an executable: a generator
function ``behavior(ctx)`` that alternates ``yield from ctx.cpu(seconds)``
and ``yield from ctx.io(seconds)`` phases and may talk to its stdio streams
(wired up by the streaming layer).  The Fig. 8 loop application, the
Fig. 6/7 ping-pong server, and every workload generator produce behaviors.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from ..calibration import SchedulerProfile
from ..sim import Environment, Process, RandomStreams
from .cpu import Tenant, WorkerCpu
from .errors import GridError

#: behavior(ctx) -> generator
Behavior = Callable[["MachineContext"], Generator]


@dataclass
class NodeSpec:
    """Published hardware/OS attributes of a worker node (GLUE-ish)."""

    op_sys: str = "Linux"
    arch: str = "i686"
    memory_mb: int = 1024
    cpu_mhz: int = 2400


class MachineContext:
    """Execution context a behavior runs in: clock, CPU, I/O, stdio."""

    def __init__(self, env: Environment, node: "WorkerNode", tenant: Tenant,
                 rng: RandomStreams, label: str) -> None:
        self.env = env
        self.node = node
        self.tenant = tenant
        self.rng = rng
        self.label = label
        #: Set by the streaming layer: the job's Console Agent binding.
        self.stdio: Optional[Any] = None
        #: Free-form mailbox for workload coordination (e.g. MPI rank).
        self.params: Dict[str, Any] = {}
        #: The simulation process running this behavior; set by
        #: :meth:`WorkerNode.execute` right after spawn (None until then).
        #: Console kill watchers use it to terminate the job.
        self.process: Optional[Any] = None

    @property
    def now(self) -> float:
        return self.env.now

    def cpu(self, seconds: float) -> Generator:
        """Consume ``seconds`` of CPU work under the node's sharing policy."""
        elapsed = yield from self.node.cpu.run(
            self.tenant, seconds, stream=f"cpu/{self.label}")
        return elapsed

    def io(self, seconds: float) -> Generator:
        """Block on a device/network wait, plus any CPU-contention delay."""
        delay = self.node.cpu.io_delay(self.tenant, stream=f"iodelay/{self.label}")
        yield self.env.timeout(seconds + delay)
        return seconds + delay

    def sleep(self, seconds: float) -> Generator:
        yield self.env.timeout(seconds)


class WorkerNode:
    """One machine of a site's cluster."""

    def __init__(self, env: Environment, rng: RandomStreams, name: str,
                 site: str, scheduler_profile: SchedulerProfile,
                 spec: Optional[NodeSpec] = None) -> None:
        self.env = env
        self.rng = rng
        self.name = name
        self.site = site
        self.spec = spec or NodeSpec()
        self.cpu = WorkerCpu(env, rng, scheduler_profile, name=f"{name}/cpu")
        #: Who controls the node: None (free), a job id, or an agent id.
        self.owner: Optional[str] = None
        self._executions: Dict[str, Process] = {}
        # Node-local so execution ids (which key RNG streams) do not
        # depend on global interpreter state across repeated runs.
        self._exec_counter = itertools.count(1)

    # -- occupancy ---------------------------------------------------------
    @property
    def is_free(self) -> bool:
        return self.owner is None

    def acquire(self, owner: str) -> None:
        if self.owner is not None:
            raise GridError(f"{self.name} is already owned by {self.owner}")
        self.owner = owner

    def release(self, owner: str) -> None:
        if self.owner != owner:
            raise GridError(f"{self.name}: release by non-owner {owner!r} "
                            f"(owner is {self.owner!r})")
        self.owner = None

    # -- execution -----------------------------------------------------------
    def execute(self, behavior: Behavior, label: str, interactive: bool,
                performance_loss: int = 0, daemon: bool = False,
                setup: Optional[Callable[[MachineContext], None]] = None) -> Process:
        """Run a behavior on this node as a new tenant process.

        ``setup`` (if given) is called with the context before the behavior
        starts — the streaming layer uses it to plug in the Console Agent.
        ``daemon`` marks CPU-invisible services (the glide-in agent).
        The returned process event fires with the behavior's return value.
        """
        exec_id = f"{self.name}/{label}#{next(self._exec_counter)}"
        tenant = self.cpu.attach(exec_id, interactive, performance_loss, daemon)
        ctx = MachineContext(self.env, self, tenant, self.rng, exec_id)
        if setup is not None:
            setup(ctx)

        def runner() -> Generator:
            try:
                result = yield from behavior(ctx)
                return result
            finally:
                self.cpu.detach(exec_id)
                self._executions.pop(exec_id, None)

        proc = self.env.process(runner(), name=exec_id)
        ctx.process = proc
        self._executions[exec_id] = proc
        return proc

    @property
    def running(self) -> int:
        return len(self._executions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<WorkerNode {self.name} owner={self.owner!r}>"
