"""GRAM-like gatekeeper: the Globus door into a site.

Paper §3: "Each grid site is composed of a cluster of machines consisting
of a gatekeeper and many worker nodes managed through a local queuing
system."  Submission through the gatekeeper pays GSI authentication, the
gatekeeper/jobmanager traversal, and (for CrossBroker) a two-phase commit —
the costs that make Table I's exclusive/batch rows an order of magnitude
slower than direct agent dispatch.

Job state *notifications* (started/finished) are modelled as instantaneous
callback events on the returned handle: the paper measures only the
submission path and the first-output path, both of which are explicit here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional

from ..calibration import MiddlewareCosts
from ..net import Credential, Network, RpcClient, RpcServer, handshake
from ..sim import Environment, RandomStreams
from .batchsystem import BatchHandle, LocalBatchSystem
from .errors import SubmissionError
from .workernode import Behavior, MachineContext

GRAM_PORT = 2119


@dataclass
class GramJobTicket:
    """What a gram.submit returns: the LRMS handle plus protocol state."""

    gram_id: str
    handle: BatchHandle
    committed: bool


class Gatekeeper:
    """The gatekeeper service of one site."""

    def __init__(self, env: Environment, network: Network, rng: RandomStreams,
                 site: str, host: str, lrms: LocalBatchSystem,
                 costs: MiddlewareCosts,
                 credential: Optional[Credential] = None) -> None:
        self.env = env
        self.network = network
        self.rng = rng
        self.site = site
        self.host = host
        self.lrms = lrms
        self.costs = costs
        self.credential = credential or Credential(f"/DC=org/DC=crossgrid/CN=gk.{site}")
        self._tickets: Dict[str, GramJobTicket] = {}
        self._next_id = 0
        #: Optional provider of the site's full advert (set by Site); the
        #: selection refresh of §6.1 queries this for the authoritative
        #: queue state, bypassing MDS staleness.
        self.info_fn: Optional[Callable[[], Dict]] = None
        self.server = RpcServer(network, host, GRAM_PORT, name=f"gram@{site}")
        self.server.register("gram.ping", lambda: self.site)
        self.server.register("gram.queue_info", self._handle_queue_info)
        self.server.register("gram.submit", self._handle_submit)
        self.server.register("gram.commit", self._handle_commit)
        self.server.register("gram.status", self._handle_status)
        self.server.register("gram.cancel", self._handle_cancel)

    def _handle_queue_info(self) -> Dict:
        """Fresh local queue state (the GRIS view of this site)."""
        if self.info_fn is not None:
            return dict(self.info_fn())
        return {
            "SiteName": self.site,
            "FreeCPUs": self.lrms.free_count,
            "TotalCPUs": self.lrms.total_nodes,
            "QueueLength": self.lrms.queue_length,
        }

    # -- handlers --------------------------------------------------------
    def _handle_submit(self, label: str, owner: str, behavior: Behavior,
                       interactive: bool = False, performance_loss: int = 0,
                       two_phase: bool = False, daemon: bool = False,
                       priority: float = 0.0,
                       setup: Optional[Callable[[MachineContext], None]] = None,
                       ) -> Generator:
        """Jobmanager spawn + RSL parsing, then enqueue at the LRMS."""
        overhead = self.rng.jitter(f"gram/{self.site}/overhead",
                                   self.costs.gram_overhead, 0.10)
        yield self.env.timeout(overhead)
        if not self.lrms.has_capacity():
            raise SubmissionError(f"{self.site}: no capacity (queue full)")
        handle = self.lrms.submit(label, owner, behavior,
                                  interactive=interactive,
                                  performance_loss=performance_loss,
                                  daemon=daemon, priority=priority,
                                  setup=setup)
        self._next_id += 1
        gram_id = f"https://{self.host}:{GRAM_PORT}/{self._next_id}"
        ticket = GramJobTicket(gram_id, handle, committed=not two_phase)
        self._tickets[gram_id] = ticket
        return ticket

    def _handle_commit(self, gram_id: str) -> Generator:
        ticket = self._tickets.get(gram_id)
        if ticket is None:
            raise SubmissionError(f"unknown gram id {gram_id}")
        yield self.env.timeout(
            self.rng.jitter(f"gram/{self.site}/commit", 0.15, 0.2))
        ticket.committed = True
        return gram_id

    def _handle_status(self, gram_id: str) -> str:
        ticket = self._tickets.get(gram_id)
        if ticket is None:
            raise SubmissionError(f"unknown gram id {gram_id}")
        return ticket.handle.state.value

    def _handle_cancel(self, gram_id: str) -> bool:
        ticket = self._tickets.get(gram_id)
        if ticket is None:
            return False
        return self.lrms.cancel(ticket.handle)


class GramClient:
    """Client-side GRAM: GSI-authenticated RPC to a gatekeeper."""

    def __init__(self, env: Environment, network: Network, rng: RandomStreams,
                 src_host: str, gatekeeper_host: str, costs: MiddlewareCosts,
                 credential: Optional[Credential] = None) -> None:
        self.env = env
        self.network = network
        self.rng = rng
        self.src_host = src_host
        self.gatekeeper_host = gatekeeper_host
        self.costs = costs
        self.credential = credential or Credential("/DC=org/DC=crossgrid/CN=user")
        self._rpc: Optional[RpcClient] = None

    def connect(self) -> Generator:
        """TCP connect + GSI mutual authentication."""
        self._rpc = RpcClient(self.network, self.src_host,
                              self.gatekeeper_host, GRAM_PORT)
        yield from self._rpc.connect()
        rtt = 2.0 * self.network.base_transfer_time(
            self.src_host, self.gatekeeper_host, 256)
        server_cred = Credential(f"/DC=org/DC=crossgrid/CN={self.gatekeeper_host}")
        yield from handshake(self.env, self.rng, self.credential, server_cred,
                             self.costs.gsi_handshake, rtt,
                             stream=f"gsi/{self.src_host}->{self.gatekeeper_host}")
        return self

    def submit(self, label: str, owner: str, behavior: Behavior,
               interactive: bool = False, performance_loss: int = 0,
               two_phase: bool = False, daemon: bool = False,
               priority: float = 0.0,
               setup: Optional[Callable[[MachineContext], None]] = None,
               ) -> Generator:
        """Submit; with ``two_phase`` the commit round is performed too.

        ``priority`` is forwarded to priority-policy LRMSes (the broker
        passes the owner's fair-share value, so Condor-style sites order
        their queues consistently with the grid-level accounting).
        """
        if self._rpc is None:
            raise SubmissionError("GramClient is not connected")
        # GRAM protocol chatter: every submission exchanges many small
        # control messages, each paying a path round trip — this is what
        # makes wide-area submissions measurably slower (Table I).
        rtt = 2.0 * self.network.base_transfer_time(
            self.src_host, self.gatekeeper_host, 128)
        yield self.env.timeout(self.costs.control_messages * rtt)
        ticket = yield from self._rpc.call(
            "gram.submit", label, owner, behavior,
            interactive=interactive, performance_loss=performance_loss,
            two_phase=two_phase, daemon=daemon, priority=priority,
            setup=setup, nbytes=2048)
        if two_phase:
            commit_cost = self.rng.jitter(
                f"gram/{self.gatekeeper_host}/2pc",
                self.costs.two_phase_commit, 0.15)
            yield self.env.timeout(commit_cost)
            yield from self._rpc.call("gram.commit", ticket.gram_id, nbytes=128)
        return ticket

    def status(self, gram_id: str) -> Generator:
        assert self._rpc is not None
        state = yield from self._rpc.call("gram.status", gram_id, nbytes=64)
        return state

    def cancel(self, gram_id: str) -> Generator:
        assert self._rpc is not None
        ok = yield from self._rpc.call("gram.cancel", gram_id, nbytes=64)
        return ok

    def close(self) -> Generator:
        if self._rpc is not None:
            yield from self._rpc.close()
            self._rpc = None
