"""A grid site: gatekeeper + worker nodes + LRMS + information publishing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..calibration import Calibration
from ..net import Network
from ..sim import Environment, RandomStreams
from .batchsystem import LocalBatchSystem, SchedulingPolicy
from .gram import Gatekeeper
from .workernode import NodeSpec, WorkerNode

#: Cluster-internal LAN parameters (switched 100 Mbps inside the site).
LAN_LATENCY = 0.0002
LAN_BANDWIDTH = 100e6 / 8
LAN_JITTER = 0.03


@dataclass
class SiteConfig:
    """Static configuration of one site."""

    name: str
    n_nodes: int = 4
    policy: SchedulingPolicy = SchedulingPolicy.FIFO
    max_queue: Optional[int] = None
    node_spec: Optional[NodeSpec] = None
    #: Free-form extra GLUE attributes (storage, VO tags, ...).
    extra_attributes: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.node_spec is None:
            self.node_spec = NodeSpec()
        if self.extra_attributes is None:
            self.extra_attributes = {}


class Site:
    """One grid site wired into the network fabric.

    Creates the gatekeeper host ``gk.<name>`` and worker-node hosts
    ``wn<i>.<name>`` with LAN links to the gatekeeper.  The caller (the
    testbed builder) connects ``gk.<name>`` to the wide-area fabric.
    """

    def __init__(self, env: Environment, network: Network, rng: RandomStreams,
                 config: SiteConfig, calibration: Calibration) -> None:
        self.env = env
        self.network = network
        self.rng = rng
        self.config = config
        self.calibration = calibration
        self.costs = calibration.middleware
        self.name = config.name
        self.gatekeeper_host = f"gk.{config.name}"

        network.add_host(self.gatekeeper_host)
        self.nodes: List[WorkerNode] = []
        for i in range(config.n_nodes):
            host = f"wn{i}.{config.name}"
            network.add_host(host)
            network.add_link(self.gatekeeper_host, host,
                             LAN_LATENCY, LAN_BANDWIDTH, LAN_JITTER)
            self.nodes.append(WorkerNode(env, rng, host, config.name,
                                         calibration.scheduler,
                                         spec=config.node_spec))

        self.lrms = LocalBatchSystem(
            env, rng, config.name, self.nodes,
            dispatch_latency=self.costs.local_queue_dispatch,
            policy=config.policy, max_queue=config.max_queue)
        self.gatekeeper = Gatekeeper(env, network, rng, config.name,
                                     self.gatekeeper_host, self.lrms,
                                     self.costs)
        # The selection refresh (§6.1) reads the authoritative advert
        # straight from the site, not the possibly-stale MDS copy.
        self.gatekeeper.info_fn = self.advert

    # -- information publishing -------------------------------------------
    def advert(self) -> Dict[str, Any]:
        """The GLUE-ish attribute set pushed to the MDS (matchmaking's
        "other." context)."""
        spec = self.config.node_spec
        assert spec is not None
        attributes: Dict[str, Any] = {
            "SiteName": self.name,
            "GatekeeperHost": self.gatekeeper_host,
            "TotalCPUs": self.lrms.total_nodes,
            "FreeCPUs": 0 if self.lrms.drained else self.lrms.free_count,
            "QueueLength": self.lrms.queue_length,
            "OpSys": spec.op_sys,
            "Arch": spec.arch,
            "MemoryMB": spec.memory_mb,
            "CpuMHz": spec.cpu_mhz,
            "LRMSPolicy": self.config.policy.value,
            "MaxQueuedJobs": (self.config.max_queue
                              if self.config.max_queue is not None
                              else 999999),
        }
        if self.lrms.drained:
            # Only present while drained, so undisturbed adverts stay
            # byte-for-byte what they always were.
            attributes["Drained"] = True
        attributes.update(self.config.extra_attributes or {})
        return attributes

    def node_by_host(self, host: str) -> WorkerNode:
        for node in self.nodes:
            if node.name == host:
                return node
        raise KeyError(host)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Site {self.name}: {self.lrms.free_count}/"
                f"{self.lrms.total_nodes} free, queue {self.lrms.queue_length}>")
