"""Per-site pull agents: the inverted submission flow's worker half.

In the AliEn production environment (PAPERS.md, cs/0306068) every site
runs a lightweight agent that *asks the central task queue for work*
whenever it has free capacity, instead of a central broker pushing jobs
onto sites from a possibly stale index.  This module is that agent: a
daemon loop on the site's gatekeeper that long-polls the broker's queue
port, advertising the site's *current* (authoritative) attributes with
each pull, and claims at most one task per round trip.

The agent is deliberately grid-layer code: it knows nothing about broker
internals, only the wire protocol (``queue.pull`` returning a claimed
job id or ``None``).  The :class:`~repro.core.pull.PullBroker` side
matches the advertised attributes against its queue and performs the
actual GRAM submission once a claim lands.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..net import Network, NetworkError, RpcClient, RpcError
from ..sim import Environment, Event, RandomStreams
from .site import Site

#: Central task-queue service port on the broker host (AGENT_PORT + 1).
PULL_PORT = 9619


class SiteAgent:
    """Long-polling pull agent for one site.

    Runs as a daemon process rooted at the site's gatekeeper: the loop is
    a service that lives as long as the site unless :meth:`stop` is
    called (the pull broker's ``drain()`` does exactly that).
    """

    def __init__(self, env: Environment, network: Network, rng: RandomStreams,
                 site: Site, broker_host: str, port: int = PULL_PORT,
                 heartbeat: float = 4.0) -> None:
        self.env = env
        self.network = network
        self.rng = rng
        self.site = site
        self.broker_host = broker_host
        self.port = port
        #: Pause between empty polls (jittered per-agent so a fleet of
        #: agents never phase-locks on the queue port).
        self.heartbeat = heartbeat
        self.pulls = 0
        self.claims = 0
        self._stop: Event = env.event()
        #: Fires once the loop has wound down (after the RPC channel is
        #: closed) — ``drain()`` waits on this.
        self.stopped: Event = env.event()
        self._proc = env.process(self._run(),
                                 name=f"site-agent/{site.name}", daemon=True)

    @property
    def running(self) -> bool:
        return not self.stopped.triggered

    def stop(self) -> None:
        """Ask the loop to exit after the in-flight poll (idempotent)."""
        if not self._stop.triggered:
            self._stop.succeed()

    # -- internals --------------------------------------------------------
    def _run(self) -> Generator:
        # No try/finally with yields here: as a daemon loop this generator
        # may be closed at environment teardown (GeneratorExit), where
        # further yields are illegal.  Orderly-stop cleanup runs inline
        # after the loop instead.
        pause = self.env.timer(name=f"site-agent/{self.site.name}/pause")
        rpc: Optional[RpcClient] = None
        while not self._stop.triggered:
            if rpc is None or not rpc.connected:
                rpc = RpcClient(self.network, self.site.gatekeeper_host,
                                self.broker_host, self.port,
                                label=f"pull/{self.site.name}")
                try:
                    yield from rpc.connect()
                except NetworkError:
                    # Broker unreachable (outage, not up yet): back off
                    # a heartbeat and retry.
                    rpc = None
                    yield (pause.arm(self._pause_delay()) | self._stop)
                    continue
            try:
                claimed = yield from rpc.call(
                    "queue.pull", self.site.name, self.site.advert(),
                    nbytes=1024)
            except (RpcError, NetworkError):
                # Channel died mid-poll; reconnect next iteration.
                rpc = None
                yield (pause.arm(self._pause_delay()) | self._stop)
                continue
            self.pulls += 1
            if claimed is not None:
                # Got work: poll again immediately — capacity may admit
                # more than one task.
                self.claims += 1
                continue
            yield (pause.arm(self._pause_delay()) | self._stop)
        pause.cancel()
        if rpc is not None and rpc.connected:
            yield from rpc.close()
        if not self.stopped.triggered:
            self.stopped.succeed()

    def _pause_delay(self) -> float:
        return self.rng.jitter(f"site-agent/{self.site.name}/hb",
                               self.heartbeat, 0.1)


__all__ = ["PULL_PORT", "SiteAgent"]
