"""Grid-substrate exceptions."""

from __future__ import annotations


class GridError(Exception):
    """Base class for grid-substrate failures."""


class SubmissionError(GridError):
    """A job could not be submitted to a site."""


class QueueFullError(SubmissionError):
    """The local scheduler's queue rejected the job."""


class NoResourcesError(GridError):
    """No machine (or VM slot) satisfies the request."""


class CoAllocationError(GridError):
    """A parallel job could not be co-allocated across sites."""


class AgentDeadError(GridError):
    """A glide-in agent died (killed by the local scheduler or node failure)."""
