"""MDS-like information system.

Paper §3: CrossBroker "obtains information on the status of each site
through an information system built using Globus MDS", and §6.1 notes the
index lives in Germany while the broker is in Spain, making a query cost
~0.5 s.  Sites *push* their adverts on a period, so what the broker reads
can be stale — which is exactly why resource selection performs a second,
per-site refresh phase (`mds.py` stores timestamps so that staleness is
observable by tests and the selection logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..net import Network, NetworkError, RpcClient, RpcServer
from ..sim import Environment, RandomStreams

MDS_PORT = 2135


@dataclass
class SiteAdvert:
    """One site's published GLUE-ish attribute set."""

    site: str
    gatekeeper: str
    attributes: Dict[str, Any]
    published_at: float

    def age(self, now: float) -> float:
        return now - self.published_at


class InformationIndex:
    """The central MDS index (GIIS)."""

    def __init__(self, env: Environment, network: Network, host: str) -> None:
        self.env = env
        self.network = network
        self.host = host
        self._adverts: Dict[str, SiteAdvert] = {}
        self.server = RpcServer(network, host, MDS_PORT, name=f"mds@{host}")
        self.server.register("mds.register", self._handle_register)
        self.server.register("mds.query", self._handle_query)

    def _handle_register(self, site: str, gatekeeper: str,
                         attributes: Dict[str, Any]) -> float:
        self._adverts[site] = SiteAdvert(site, gatekeeper, dict(attributes),
                                         self.env.now)
        return self.env.now

    def _handle_query(self) -> Generator:
        # Directory search latency inside the index.
        yield self.env.timeout(0.02 + 0.001 * len(self._adverts))
        return list(self._adverts.values())

    @property
    def site_count(self) -> int:
        return len(self._adverts)


class MdsPublisher:
    """Per-site process pushing the advert to the index on a period."""

    def __init__(self, env: Environment, network: Network, rng: RandomStreams,
                 site: str, gatekeeper: str, src_host: str, index_host: str,
                 advert_fn, period: float = 30.0) -> None:
        self.env = env
        self.network = network
        self.rng = rng
        self.site = site
        self.gatekeeper = gatekeeper
        self.src_host = src_host
        self.index_host = index_host
        self.advert_fn = advert_fn
        self.period = period
        #: Re-armed in place every refresh instead of allocating a fresh
        #: Timeout per period (advert-freshness churn scales with sites).
        # Service roots: the publisher loop and its period timer live
        # for the whole simulation (their helpers inherit daemon).
        self._period_timer = env.timer(name=f"mds-push/{site}/period",
                                       daemon=True)
        self._proc = env.process(self._loop(), name=f"mds-push/{site}",
                                 daemon=True)

    def _loop(self) -> Generator:
        rpc = RpcClient(self.network, self.src_host, self.index_host, MDS_PORT,
                        label=f"mds-push/{self.site}")
        connected = False
        while True:
            try:
                if not connected:
                    yield from rpc.connect()
                    connected = True
                yield from rpc.call("mds.register", self.site, self.gatekeeper,
                                    self.advert_fn(), nbytes=1024)
            except NetworkError:
                connected = False  # index unreachable; retry next period
            jittered = self.rng.jitter(f"mds-push/{self.site}", self.period, 0.05)
            yield self._period_timer.arm(jittered)


def query_index(env: Environment, network: Network, rng: RandomStreams,
                src_host: str, index_host: str,
                stream: str = "mds-query") -> Generator:
    """One-shot MDS query from ``src_host`` (the broker's discovery step)."""
    rpc = RpcClient(network, src_host, index_host, MDS_PORT, label=stream)
    yield from rpc.connect()
    try:
        adverts: List[SiteAdvert] = yield from rpc.call("mds.query", nbytes=256)
    finally:
        yield from rpc.close()
    return adverts
