"""Input-sandbox staging.

Table I notes CrossBroker "performs some extra actions compared to Glogin
in order to prepare automatic staging of job input files".  Staging is a
GridFTP-style transfer of each sandbox file from the submitting machine to
the selected site, plus a fixed per-transfer channel setup.
"""

from __future__ import annotations

from typing import Generator, Iterable, Tuple

from ..net import Network
from ..sim import Environment, RandomStreams

#: Control-channel setup per staging session (auth already done by GRAM).
SESSION_SETUP = 0.35
#: Per-file protocol overhead (STOR round trip, directory create).
PER_FILE = 0.12


def stage_input(env: Environment, network: Network, rng: RandomStreams,
                src: str, dst: str,
                sandbox: Iterable[Tuple[str, int]]) -> Generator:
    """Transfer the input sandbox; returns total staging time."""
    files = list(sandbox)
    start = env.now
    setup = rng.jitter(f"staging/{src}->{dst}/setup", SESSION_SETUP, 0.15)
    yield env.timeout(setup)
    # One re-armable pacing timer for the whole sandbox (not one event
    # per file — the timer-churn pattern simlint flags).
    pace = env.timer(name=f"staging/{src}->{dst}/pace")
    for name, size in files:
        per_file = rng.jitter(f"staging/{src}->{dst}/file", PER_FILE, 0.2)
        transfer = network.transfer_time(src, dst, size,
                                         stream=f"staging/{name}")
        yield pace.arm(per_file + transfer)
    return env.now - start


def retrieve_output(env: Environment, network: Network, rng: RandomStreams,
                    src: str, dst: str,
                    sandbox: Iterable[Tuple[str, int]]) -> Generator:
    """Stage the output sandbox back to the submitting side.

    §1's batch workflow ends with the user "retriev[ing] the output after
    the job is executed"; same GridFTP-style cost model as input staging,
    reversed direction.
    """
    files = list(sandbox)
    start = env.now
    setup = rng.jitter(f"retrieve/{src}->{dst}/setup", SESSION_SETUP, 0.15)
    yield env.timeout(setup)
    pace = env.timer(name=f"retrieve/{src}->{dst}/pace")
    for name, size in files:
        per_file = rng.jitter(f"retrieve/{src}->{dst}/file", PER_FILE, 0.2)
        transfer = network.transfer_time(src, dst, size,
                                         stream=f"retrieve/{name}")
        yield pace.arm(per_file + transfer)
    return env.now - start
