"""Local batch systems (LRMS) managing a site's worker nodes.

Each grid site runs "a local queuing system, such as PBS or Condor"
(paper §3).  The model: jobs enter a queue; a scheduling cycle runs
periodically (plus immediately on submission/completion events) and
assigns queued jobs to free nodes in policy order.  The dispatch latency —
the time between a node being available and the job's process actually
starting — is the ``local_queue_dispatch`` constant of Table I.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from ..sim import Environment, Event, Interrupt, RandomStreams, Timer
from .errors import QueueFullError
from .workernode import Behavior, MachineContext, WorkerNode


class JobState(enum.Enum):
    QUEUED = "queued"
    DISPATCHING = "dispatching"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    FAILED = "failed"


class SchedulingPolicy(enum.Enum):
    """Local scheduler flavor (paper §3: "such as PBS or Condor").

    * FIFO — PBS-style arrival order;
    * PRIORITY — Condor-style priority-ordered queue (lower value first);
    * PREEMPTIVE — priority ordering *and* eviction: a sufficiently better
      queued job evicts the worst running one, which restarts from the
      queue (no checkpointing — as a vanilla 2006 pool behaves, and the
      reason §5.2 stresses that killed glide-in agents must be replanted).
    """

    FIFO = "fifo"
    PRIORITY = "priority"
    PREEMPTIVE = "preemptive"




@dataclass
class BatchHandle:
    """The LRMS-side record of a submitted job."""

    local_id: str
    label: str
    owner: str
    behavior: Behavior
    interactive: bool = False
    performance_loss: int = 0
    priority: float = 0.0
    daemon: bool = False
    setup: Optional[Callable[[MachineContext], None]] = None
    state: JobState = JobState.QUEUED
    node: Optional[WorkerNode] = None
    #: Times this job was evicted by a higher-priority one (PREEMPTIVE).
    preemptions: int = 0
    #: The running simulation process (while RUNNING).
    proc: Optional[object] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Fires when the job's process begins executing on a node.
    started: Optional[Event] = None
    #: Fires with the behavior's return value (or fails) at completion.
    finished: Optional[Event] = None
    result: object = None


#: Interrupt cause marking a preemption (identity-compared).
_PREEMPTED = "lrms-preempted"


class LocalBatchSystem:
    """The LRMS of one site."""

    def __init__(self, env: Environment, rng: RandomStreams, site: str,
                 nodes: List[WorkerNode], dispatch_latency: float,
                 policy: SchedulingPolicy = SchedulingPolicy.FIFO,
                 max_queue: Optional[int] = None,
                 cycle_interval: float = 2.0) -> None:
        self.env = env
        self.rng = rng
        self.site = site
        self.nodes = list(nodes)
        self.dispatch_latency = dispatch_latency
        self.policy = policy
        self.max_queue = max_queue
        self.cycle_interval = cycle_interval
        self.queue: List[BatchHandle] = []
        self.running: Dict[str, BatchHandle] = {}
        #: Administrative drain (steering verb ``drain_site``): while set,
        #: new submissions are rejected and queued jobs are not dispatched;
        #: running jobs finish normally.
        self.drained = False
        self._handle_counter = itertools.count(1)
        #: One re-armable cycle timer replaces the seed's per-cycle
        #: ``timeout | kick`` idiom (which allocated a timeout, a fresh
        #: kick event, and an AnyOf condition every cycle and left the
        #: losing timeout dead in the heap).  ``_wake`` simply re-arms the
        #: timer to *now*, so a submission/completion still triggers an
        #: immediate dispatch cycle.
        self._cycle_timer = Timer(env, name=f"lrms/{site}/cycle",
                                  daemon=True)  # service root
        self._kicked = False
        self._proc = env.process(self._scheduler_loop(), name=f"lrms/{site}",
                                 daemon=True)  # service root: LRMS cycles forever

    # -- published state (feeds the MDS advert) ----------------------------
    def free_nodes(self) -> List[WorkerNode]:
        return [n for n in self.nodes if n.is_free]

    @property
    def free_count(self) -> int:
        return len(self.free_nodes())

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    @property
    def total_nodes(self) -> int:
        return len(self.nodes)

    def has_capacity(self) -> bool:
        """Free node now, or room in the queue (paper §5.2: "space in the
        queues managed by the local scheduler")."""
        if self.drained:
            return False
        if self.free_count > 0:
            return True
        return self.max_queue is None or len(self.queue) < self.max_queue

    def set_drained(self, drained: bool) -> None:
        """Flip the administrative drain; undraining kicks a dispatch
        cycle so jobs parked in the queue start immediately."""
        self.drained = bool(drained)
        self._publish_telemetry()
        if not self.drained:
            self._wake()

    # -- submission ----------------------------------------------------------
    def submit(self, label: str, owner: str, behavior: Behavior,
               interactive: bool = False, performance_loss: int = 0,
               priority: float = 0.0, daemon: bool = False,
               setup: Optional[Callable[[MachineContext], None]] = None) -> BatchHandle:
        """Enqueue a job; raises :class:`QueueFullError` when over capacity."""
        if self.drained:
            raise QueueFullError(f"{self.site}: site drained")
        if self.max_queue is not None and len(self.queue) >= self.max_queue \
                and self.free_count == 0:
            raise QueueFullError(f"{self.site}: queue full")
        handle = BatchHandle(
            local_id=f"{self.site}.{next(self._handle_counter)}",
            label=label, owner=owner, behavior=behavior,
            interactive=interactive, performance_loss=performance_loss,
            priority=priority, daemon=daemon, setup=setup,
            submitted_at=self.env.now,
            started=self.env.event(), finished=self.env.event(),
        )
        self.queue.append(handle)
        self._publish_telemetry()
        self._wake()
        return handle

    def cancel(self, handle: BatchHandle) -> bool:
        """Remove a queued job; running jobs cannot be cancelled here."""
        if handle in self.queue:
            self.queue.remove(handle)
            handle.state = JobState.CANCELLED
            if handle.finished is not None and not handle.finished.triggered:
                handle.finished.fail(QueueFullError("cancelled"))
                handle.finished.defuse()
            return True
        return False

    # -- internals ---------------------------------------------------------
    def _publish_telemetry(self) -> None:
        """Refresh the per-site node gauges (no-op when uninstalled)."""
        t = self.env.telemetry
        if t is not None:
            t.gauge(f"lrms.running.{self.site}").set(len(self.running))
            t.gauge(f"lrms.idle.{self.site}").set(self.free_count)
            t.gauge(f"lrms.pending.{self.site}").set(len(self.queue))

    def _wake(self) -> None:
        # Pull the next cycle forward to *now*.  The flag covers kicks that
        # arrive before the scheduler process has started (or while it is
        # between wakeup and re-arm), mirroring the pre-triggered-kick
        # behaviour of the seed implementation.
        self._kicked = True
        self._cycle_timer.restart(0.0)

    def _scheduler_loop(self) -> Generator:
        while True:
            if not self._kicked:
                yield self._cycle_timer.restart(self.cycle_interval)
            self._kicked = False
            self._dispatch_cycle()

    def _order_queue(self) -> List[BatchHandle]:
        if self.policy in (SchedulingPolicy.PRIORITY,
                           SchedulingPolicy.PREEMPTIVE):
            # Lower priority value is better (matches the broker's
            # fair-share convention); FIFO among equals.
            return sorted(self.queue, key=lambda h: h.priority)
        return list(self.queue)

    def _dispatch_cycle(self) -> None:
        if self.drained:
            return
        free = self.free_nodes()
        if self.queue and not free \
                and self.policy is SchedulingPolicy.PREEMPTIVE:
            self._try_preempt()
            free = self.free_nodes()
        if not free or not self.queue:
            return
        for handle in self._order_queue():
            if not free:
                break
            node = free.pop(0)
            self.queue.remove(handle)
            handle.state = JobState.DISPATCHING
            node.acquire(handle.local_id)
            handle.node = node
            self.env.process(self._start_job(handle, node),
                             name=f"dispatch/{handle.local_id}")

    def _try_preempt(self) -> None:
        """Evict the worst running job if a queued one clearly beats it."""
        queued = self._order_queue()
        running = [h for h in self.running.values()
                   if h.proc is not None and not h.daemon]
        if not queued or not running:
            return
        best_queued = queued[0]
        victim = max(running, key=lambda h: h.priority)
        if best_queued.priority < victim.priority:
            victim.preemptions += 1
            try:
                victim.proc.interrupt(_PREEMPTED)
            except Exception:  # noqa: BLE001 - already finishing
                return

    def _start_job(self, handle: BatchHandle, node: WorkerNode) -> Generator:
        # Staging the executable to the node + LRMS prologue.
        latency = self.rng.jitter(f"lrms/{self.site}/dispatch",
                                  self.dispatch_latency, 0.12)
        yield self.env.timeout(latency)
        handle.state = JobState.RUNNING
        handle.started_at = self.env.now
        self.running[handle.local_id] = handle
        self._publish_telemetry()
        if handle.started is not None and not handle.started.triggered:
            handle.started.succeed(node.name)
        proc = node.execute(handle.behavior, handle.label,
                            interactive=handle.interactive,
                            performance_loss=handle.performance_loss,
                            daemon=handle.daemon,
                            setup=handle.setup)
        handle.proc = proc
        try:
            result = yield proc
            handle.state = JobState.DONE
            handle.result = result
            if handle.finished is not None and not handle.finished.triggered:
                handle.finished.succeed(result)
        except Interrupt as interrupt:
            if interrupt.cause is _PREEMPTED:
                # Evicted by a better job: back to the queue, restart from
                # scratch on the next free node.
                handle.state = JobState.QUEUED
                handle.node = None
                handle.proc = None
                self.running.pop(handle.local_id, None)
                node.release(handle.local_id)
                self.queue.append(handle)
                self._wake()
                return
            handle.state = JobState.FAILED
            if handle.finished is not None and not handle.finished.triggered:
                handle.finished.fail(interrupt)
                handle.finished.defuse()
        except Exception as exc:  # noqa: BLE001 - job failure is data here
            handle.state = JobState.FAILED
            if handle.finished is not None and not handle.finished.triggered:
                handle.finished.fail(exc)
                handle.finished.defuse()
        finally:
            if handle.state is not JobState.QUEUED:
                handle.finished_at = self.env.now
                handle.proc = None
                self.running.pop(handle.local_id, None)
                if node.owner == handle.local_id:
                    node.release(handle.local_id)
                self._publish_telemetry()
                self._wake()
