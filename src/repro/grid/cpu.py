"""Worker-node CPU scheduling model.

This module is the substrate behind Figure 8.  A worker node's CPU is
occupied by *tenants* — the interactive job, an optional co-located batch
job (the multiprogramming agent's two lightweight VMs), or more of each
when the degree of multiprogramming is raised (paper §5.2, future work).

Sharing model
-------------
The glide-in agent enforces ``PerformanceLoss`` (PL) with OS priorities:
the interactive job always preempts the batch job, but the agent grants the
batch job PL% of the CPU time the interactive job consumes, in whole
scheduler quanta.  Consequences reproduced here:

* a CPU burst of length ``L`` is stretched by
  ``floor(L * PL/100 / quantum)`` whole quanta (plus a context switch per
  quantum) — the flooring is why the paper's *measured* loss (8 % / 22 %)
  sits slightly below the nominal PL (10 / 25);
* an I/O completion can find the batch job inside a non-preemptible
  section, adding ``~PL/100 × preempt_latency`` to I/O operations — the
  paper's smaller I/O loss (5 % / 10 %);
* with no batch tenant, the agent adds *no* per-operation cost
  (paper: exclusive and shared-alone curves are indistinguishable);
* several interactive tenants time-share equally ahead of all batch
  tenants; several batch tenants share the PL allotment equally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..calibration import SchedulerProfile
from ..sim import Environment, RandomStreams


@dataclass
class Tenant:
    """A job resident on the node's CPU."""

    name: str
    interactive: bool
    #: PerformanceLoss of the interactive job that brought this pairing
    #: about; stored on the *interactive* tenant.
    performance_loss: int = 0
    #: Daemons (the glide-in agent itself) block while waiting for events
    #: and are invisible to the sharing arithmetic — the paper measures the
    #: agent's own overhead as negligible (Fig. 8, shared-alone curve).
    daemon: bool = False
    #: CPU-seconds consumed so far (for accounting / fair-share input).
    consumed: float = 0.0


class WorkerCpu:
    """The CPU of one worker node, shared by registered tenants."""

    def __init__(self, env: Environment, rng: RandomStreams,
                 profile: SchedulerProfile, name: str = "cpu") -> None:
        self.env = env
        self.rng = rng
        self.profile = profile
        self.name = name
        self._tenants: Dict[str, Tenant] = {}

    # -- tenancy -----------------------------------------------------------
    def attach(self, name: str, interactive: bool,
               performance_loss: int = 0, daemon: bool = False) -> Tenant:
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} already attached to {self.name}")
        tenant = Tenant(name, interactive, performance_loss, daemon)
        self._tenants[name] = tenant
        return tenant

    def detach(self, name: str) -> None:
        self._tenants.pop(name, None)

    def tenants(self) -> Dict[str, Tenant]:
        return dict(self._tenants)

    @property
    def interactive_count(self) -> int:
        return sum(1 for t in self._tenants.values()
                   if t.interactive and not t.daemon)

    @property
    def batch_count(self) -> int:
        return sum(1 for t in self._tenants.values()
                   if not t.interactive and not t.daemon)

    # -- execution ---------------------------------------------------------
    def burst_elapsed(self, tenant: Tenant, work: float) -> float:
        """Wall-clock time for ``work`` CPU-seconds by ``tenant`` (no jitter)."""
        profile = self.profile
        if tenant.interactive:
            # Interactive tenants time-share equally ahead of batch ones.
            k = max(self.interactive_count, 1)
            elapsed = work * k
            if self.batch_count > 0 and tenant.performance_loss > 0:
                share = tenant.performance_loss / 100.0
                quanta = math.floor(work * share / profile.quantum)
                elapsed += quanta * (profile.quantum + profile.context_switch)
            return elapsed
        # Batch tenant: runs full speed when alone; under an interactive
        # tenant it only receives the PL allotment of whole quanta.
        interactive = [t for t in self._tenants.values()
                       if t.interactive and not t.daemon]
        if not interactive:
            k = max(self.batch_count, 1)
            return work * k
        pl = max((t.performance_loss for t in interactive), default=0)
        if pl <= 0:
            # Starved until the interactive job leaves; model as a very
            # large stretch bounded by the background trickle the OS
            # still grants (1 %).
            return work * 100.0
        share = pl / 100.0 / max(self.batch_count, 1)
        return work / share

    def run(self, tenant: Tenant, work: float,
            stream: Optional[str] = None) -> Generator:
        """Consume ``work`` CPU-seconds; returns the elapsed wall time.

        The sharing state is sampled at burst start — bursts in this
        substrate are short relative to tenancy changes (the Fig. 8 loop
        iterates ~1 s bursts against multi-minute jobs), and the paper's
        measurement has the same granularity.
        """
        if tenant.name not in self._tenants:
            raise ValueError(f"tenant {tenant.name!r} is not attached")
        if work < 0:
            raise ValueError("work must be >= 0")
        elapsed = self.burst_elapsed(tenant, work)
        if stream is not None and elapsed > 0:
            elapsed = self.rng.jitter(stream, elapsed, 0.002)
        if elapsed > 0:
            yield self.env.timeout(elapsed)
        tenant.consumed += work
        t = self.env.telemetry
        if t is not None:
            kind = "interactive" if tenant.interactive else "batch"
            t.counter(f"cpu.consumed.{kind}").inc(work)
        return elapsed

    def io_delay(self, tenant: Tenant, stream: Optional[str] = None) -> float:
        """Extra latency an I/O completion suffers from CPU contention.

        When a batch tenant shares the node, the I/O interrupt finds it in
        a non-preemptible section with probability proportional to its
        allotment; the interactive job then waits out the preemption
        latency.
        """
        if not tenant.interactive or self.batch_count == 0:
            return 0.0
        pl = tenant.performance_loss
        if pl <= 0:
            return 0.0
        delay = (pl / 100.0) * self.profile.preempt_latency
        if stream is not None:
            delay = self.rng.jitter(stream, delay, 0.10)
        return delay
