"""Grid substrate: sites, worker nodes, batch systems, GRAM, MDS, staging."""

from .batchsystem import (
    BatchHandle,
    JobState,
    LocalBatchSystem,
    SchedulingPolicy,
)
from .cpu import Tenant, WorkerCpu
from .errors import (
    AgentDeadError,
    CoAllocationError,
    GridError,
    NoResourcesError,
    QueueFullError,
    SubmissionError,
)
from .gram import GRAM_PORT, Gatekeeper, GramClient, GramJobTicket
from .mds import InformationIndex, MDS_PORT, MdsPublisher, SiteAdvert, query_index
from .mpi import AllocationSlice, Subjob, plan_allocation, sites_used, subjobs_for
from .site import Site, SiteConfig
from .staging import retrieve_output, stage_input
from .testbed import (
    BROKER_HOST,
    CORE_HOST,
    MDS_HOST,
    Testbed,
    UI_HOST,
    base_world,
    campus_grid,
    europe_testbed,
    wan_grid,
)
from .workernode import Behavior, MachineContext, NodeSpec, WorkerNode

__all__ = [
    "AgentDeadError",
    "AllocationSlice",
    "BatchHandle",
    "Behavior",
    "BROKER_HOST",
    "CoAllocationError",
    "CORE_HOST",
    "Gatekeeper",
    "GramClient",
    "GramJobTicket",
    "GRAM_PORT",
    "GridError",
    "InformationIndex",
    "JobState",
    "LocalBatchSystem",
    "MachineContext",
    "MDS_HOST",
    "MDS_PORT",
    "MdsPublisher",
    "NodeSpec",
    "NoResourcesError",
    "QueueFullError",
    "SchedulingPolicy",
    "Site",
    "SiteAdvert",
    "SiteConfig",
    "Subjob",
    "SubmissionError",
    "Tenant",
    "Testbed",
    "UI_HOST",
    "WorkerCpu",
    "WorkerNode",
    "base_world",
    "campus_grid",
    "europe_testbed",
    "plan_allocation",
    "query_index",
    "sites_used",
    "retrieve_output",
    "stage_input",
    "subjobs_for",
    "wan_grid",
]
