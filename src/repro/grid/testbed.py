"""Testbed topology builders.

The paper's two measurement scenarios (§6): a *campus grid* (submission and
execution machines on the 100 Mbps university network) and a *wide-area
grid* (client at UAB, execution at IFCA/Santander).  §6.1 additionally uses
a set of ~20 European sites for the discovery/selection measurements, with
the information index in Germany.

Topology: a star around the backbone host ``core``.  The user-interface
machine ``ui`` and the broker machine ``broker`` sit on the department LAN;
each site's gatekeeper hangs off the core with its scenario profile; the
MDS index host ``mds`` is reached over a WAN-grade link.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..calibration import CAMPUS, Calibration, DEFAULT_CALIBRATION, NetworkProfile, WAN
from ..net import Network
from ..sim import Environment, RandomStreams
from .mds import InformationIndex, MdsPublisher
from .site import Site, SiteConfig

UI_HOST = "ui"
BROKER_HOST = "broker"
CORE_HOST = "core"
MDS_HOST = "mds"

#: The MDS index is in Germany (paper §6.1): a long WAN hop.
MDS_PROFILE = NetworkProfile(latency=0.016, bandwidth=10e6 / 8, jitter=0.15)


@dataclass
class Testbed:
    """A fully wired simulation world."""

    env: Environment
    rng: RandomStreams
    network: Network
    calibration: Calibration
    sites: Dict[str, Site] = field(default_factory=dict)
    index: Optional[InformationIndex] = None
    publishers: List[MdsPublisher] = field(default_factory=list)

    @property
    def ui(self) -> str:
        return UI_HOST

    @property
    def broker_host(self) -> str:
        return BROKER_HOST

    def site(self, name: str) -> Site:
        return self.sites[name]

    def total_free_cpus(self) -> int:
        return sum(site.lrms.free_count for site in self.sites.values())

    def add_site(self, config: SiteConfig, profile: NetworkProfile) -> Site:
        """Create a site and hang its gatekeeper off the core."""
        site = Site(self.env, self.network, self.rng, config, self.calibration)
        # Split the scenario latency across the two star legs so that the
        # ui->gk path sums to the profile latency.
        self.network.add_link(CORE_HOST, site.gatekeeper_host,
                              profile.latency / 2, profile.bandwidth,
                              profile.jitter)
        self.sites[config.name] = site
        if self.index is not None:
            self.publishers.append(MdsPublisher(
                self.env, self.network, self.rng, config.name,
                site.gatekeeper_host, site.gatekeeper_host, MDS_HOST,
                site.advert))
        return site

    def publish_all_now(self) -> None:
        """Synchronously seed the index with current adverts (test helper;
        skips the push RPC so it can run before ``env.run``)."""
        assert self.index is not None
        for site in self.sites.values():
            self.index._handle_register(site.name, site.gatekeeper_host,
                                        site.advert())


def _base_world(seed: int = 0,
                calibration: Optional[Calibration] = None,
                profile: NetworkProfile = CAMPUS,
                with_mds: bool = True,
                sanitize: Optional[bool] = None) -> Testbed:
    """Core + ui + broker (+ MDS index), no sites yet.

    ``sanitize`` attaches the runtime lifecycle sanitizer to the world's
    environment (see :mod:`repro.analysis.sanitizer`); ``None`` defers to
    ``Environment.default_sanitize`` (audit scopes).

    Internal: :class:`repro.Scenario` and the legacy shims build on this.
    """
    env = Environment(sanitize=sanitize)
    rng = RandomStreams(seed)
    network = Network(env, rng.spawn("network"))
    calibration = calibration or DEFAULT_CALIBRATION

    network.add_host(CORE_HOST)
    network.add_host(UI_HOST)
    network.add_host(BROKER_HOST)
    # Department LAN: ui and broker near each other, campus-grade uplink.
    network.add_link(UI_HOST, CORE_HOST, CAMPUS.latency / 2,
                     CAMPUS.bandwidth, CAMPUS.jitter)
    network.add_link(BROKER_HOST, CORE_HOST, CAMPUS.latency / 2,
                     CAMPUS.bandwidth, CAMPUS.jitter)

    testbed = Testbed(env=env, rng=rng, network=network,
                      calibration=calibration)
    if with_mds:
        network.add_host(MDS_HOST)
        network.add_link(CORE_HOST, MDS_HOST, MDS_PROFILE.latency,
                         MDS_PROFILE.bandwidth, MDS_PROFILE.jitter)
        testbed.index = InformationIndex(env, network, MDS_HOST)
    return testbed


def base_world(seed: int = 0,
               calibration: Optional[Calibration] = None,
               profile: NetworkProfile = CAMPUS,
               with_mds: bool = True,
               sanitize: Optional[bool] = None) -> Testbed:
    """Deprecated shim — use ``Scenario(...)`` then ``handle.testbed``."""
    warnings.warn(
        "base_world() is deprecated; use "
        "repro.Scenario(...).build().testbed instead",
        DeprecationWarning, stacklevel=2)
    return _base_world(seed, calibration, profile, with_mds, sanitize)


def campus_grid(seed: int = 0, n_nodes: int = 4,
                calibration: Optional[Calibration] = None,
                site_name: str = "uab") -> Testbed:
    """Scenario 1: one site on the campus network (paper §6).

    Deprecated shim — use ``Scenario(sites=1, scenario="campus",
    nodes_per_site=n).build()`` (the handle's ``.testbed`` is this world).
    """
    warnings.warn(
        "campus_grid() is deprecated; use repro.Scenario(sites=1, "
        "scenario='campus', nodes_per_site=n).build() instead",
        DeprecationWarning, stacklevel=2)
    testbed = _base_world(seed, calibration)
    testbed.add_site(SiteConfig(site_name, n_nodes=n_nodes), CAMPUS)
    return testbed


def wan_grid(seed: int = 0, n_nodes: int = 4,
             calibration: Optional[Calibration] = None,
             site_name: str = "ifca") -> Testbed:
    """Scenario 2: execution at IFCA (Santander) over the Spanish NREN.

    Deprecated shim — use ``Scenario(sites=1, scenario="wan",
    nodes_per_site=n).build()`` (the handle's ``.testbed`` is this world).
    """
    warnings.warn(
        "wan_grid() is deprecated; use repro.Scenario(sites=1, "
        "scenario='wan', nodes_per_site=n).build() instead",
        DeprecationWarning, stacklevel=2)
    testbed = _base_world(seed, calibration)
    testbed.add_site(SiteConfig(site_name, n_nodes=n_nodes), WAN)
    return testbed


def europe_testbed(seed: int = 0, n_sites: int = 20,
                   nodes_per_site: int = 4,
                   calibration: Optional[Calibration] = None,
                   site_names: Optional[Sequence[str]] = None,
                   sanitize: Optional[bool] = None) -> Testbed:
    """§6.1's discovery/selection setting: ~20 sites across Europe.

    Site WAN profiles are drawn (deterministically from ``seed``) between
    the campus and long-haul extremes, approximating the heterogeneous
    CrossGrid testbed (18 sites, 9 countries).
    """
    testbed = _base_world(seed, calibration, sanitize=sanitize)
    rng = testbed.rng
    names = list(site_names) if site_names else [
        f"site{i:02d}" for i in range(n_sites)]
    for i, name in enumerate(names):
        latency = rng.uniform(f"testbed/lat/{name}", 0.004, 0.030)
        bandwidth = rng.uniform(f"testbed/bw/{name}", 4e6 / 8, 40e6 / 8)
        profile = NetworkProfile(latency=latency, bandwidth=bandwidth,
                                 jitter=0.15)
        testbed.add_site(SiteConfig(name, n_nodes=nodes_per_site), profile)
    return testbed
