"""Terminal figures: multi-series ASCII line charts with axes.

The experiment harness renders each paper figure as a braille-free,
plain-character chart so the *shape* the paper plots (who is above whom,
where curves cross) is visible straight in the terminal or a CI log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .series import Series, downsample

#: Glyphs assigned to series in order.
SERIES_GLYPHS = "*o+x#@%&"


@dataclass
class AsciiChart:
    """A fixed-size character canvas with y axis labels and a legend."""

    title: str
    width: int = 64
    height: int = 16
    y_label: str = ""
    x_label: str = ""
    #: name -> sample vector (downsampled onto the canvas width).
    series: Dict[str, Sequence[float]] = field(default_factory=dict)
    log_y: bool = False

    def add_series(self, name: str, values: Sequence[float]) -> None:
        if not values:
            raise ValueError(f"series {name!r} is empty")
        self.series[name] = list(values)

    # -- rendering -----------------------------------------------------------
    def _bounds(self) -> Tuple[float, float]:
        lo = min(min(v) for v in self.series.values())
        hi = max(max(v) for v in self.series.values())
        if self.log_y:
            lo = max(lo, 1e-12)
            hi = max(hi, lo * 1.0001)
            return math.log10(lo), math.log10(hi)
        if hi - lo < 1e-12:
            hi = lo + 1.0
        return lo, hi

    def _scale(self, value: float, lo: float, hi: float) -> int:
        if self.log_y:
            value = math.log10(max(value, 1e-12))
        fraction = (value - lo) / (hi - lo)
        fraction = min(max(fraction, 0.0), 1.0)
        return int(round(fraction * (self.height - 1)))

    def render(self) -> str:
        if not self.series:
            raise ValueError("no series to render")
        lo, hi = self._bounds()
        canvas = [[" "] * self.width for _ in range(self.height)]

        for index, (name, values) in enumerate(self.series.items()):
            glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
            points = downsample(values, self.width)
            # Spread the points across the full width.
            for col in range(len(points)):
                x = int(col * (self.width - 1) / max(len(points) - 1, 1))
                y = self._scale(points[col], lo, hi)
                row = self.height - 1 - y
                canvas[row][x] = glyph

        def fmt(value: float) -> str:
            if self.log_y:
                value = 10 ** value
            magnitude = abs(value)
            if magnitude != 0 and (magnitude < 0.01 or magnitude >= 1e5):
                return f"{value:.1e}"
            return f"{value:.3g}"

        top_label, bottom_label = fmt(hi), fmt(lo)
        gutter = max(len(top_label), len(bottom_label)) + 1
        out: List[str] = [self.title]
        if self.y_label:
            out.append(f"({self.y_label})")
        for row_index, row in enumerate(canvas):
            if row_index == 0:
                label = top_label.rjust(gutter)
            elif row_index == self.height - 1:
                label = bottom_label.rjust(gutter)
            else:
                label = " " * gutter
            out.append(f"{label}|{''.join(row)}")
        out.append(" " * gutter + "+" + "-" * self.width)
        if self.x_label:
            out.append(" " * (gutter + 1) + self.x_label)
        legend = "   ".join(
            f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
            for i, name in enumerate(self.series))
        out.append(" " * (gutter + 1) + legend)
        return "\n".join(out)


def series_chart(title: str, series: Mapping[str, Series],
                 y_label: str = "", x_label: str = "",
                 log_y: bool = False, width: int = 64,
                 height: int = 16) -> str:
    """Convenience: chart a dict of :class:`Series` objects."""
    chart = AsciiChart(title=title, width=width, height=height,
                       y_label=y_label, x_label=x_label, log_y=log_y)
    for name, values in series.items():
        chart.add_series(name, list(values.values))
    return chart.render()


def size_profile_chart(title: str,
                       by_mech: Mapping[str, Mapping[int, Series]],
                       sizes: Sequence[int], y_label: str = "ms",
                       width: int = 64, height: int = 14) -> str:
    """Chart of mean round-trip vs payload size, one curve per mechanism
    (the summary view of Figures 6/7)."""
    chart = AsciiChart(title=title, width=width, height=height,
                       y_label=y_label, x_label="payload size "
                       f"({' -> '.join(str(s) for s in sizes)} B, log x)",
                       log_y=True)
    for name, per_size in by_mech.items():
        means = [per_size[s].mean * 1e3 for s in sizes]
        # Interpolate to the canvas width on a log-size axis.
        log_sizes = np.log10(np.asarray(sizes, dtype=float))
        xs = np.linspace(log_sizes[0], log_sizes[-1], width)
        interpolated = np.interp(xs, log_sizes, means)
        chart.add_series(name, [float(v) for v in interpolated])
    return chart.render()
