"""Trace post-processing: phase breakdown tables and JSON/CSV export.

Consumes a :class:`repro.obs.Tracer` and renders the per-phase latency
breakdown the ``repro trace`` CLI prints for Table I scenarios, plus
machine-readable dumps for downstream analysis (notebooks, CI artifacts).
"""

from __future__ import annotations

import csv
import json
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from .tables import AsciiTable

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Tracer

__all__ = [
    "counters_table",
    "job_breakdown_table",
    "phase_breakdown_table",
    "write_trace_csv",
    "write_trace_json",
]


def phase_breakdown_table(tracer: "Tracer",
                          title: str = "Per-phase latency breakdown"
                          ) -> AsciiTable:
    """One row per span name: count, mean/p50/p95/max, total, errors."""
    table = AsciiTable(
        ["phase", "count", "mean (s)", "p50 (s)", "p95 (s)", "max (s)",
         "total (s)", "errors"],
        title=title, precision=3)
    for name, agg in tracer.phase_stats().items():
        table.add_row(name, agg.count, agg.mean, agg.percentile(50),
                      agg.percentile(95), agg.maximum, agg.total, agg.errors)
    return table


def job_breakdown_table(tracer: "Tracer", jobs: Optional[List[str]] = None,
                        title: str = "Per-job phase totals (s)") -> AsciiTable:
    """Jobs as rows, canonical phases as columns (totals in seconds)."""
    jobs = tracer.jobs() if jobs is None else jobs
    phases: List[str] = []
    for job in jobs:
        for name in tracer.job_breakdown(job):
            if name not in phases:
                phases.append(name)
    table = AsciiTable(["job"] + phases, title=title, precision=3)
    for job in jobs:
        breakdown = tracer.job_breakdown(job)
        table.add_row(job, *[breakdown.get(p) for p in phases])
    return table


def counters_table(tracer: "Tracer",
                   title: str = "Counters") -> AsciiTable:
    table = AsciiTable(["counter", "count"], title=title)
    for name in sorted(tracer.counters):
        table.add_row(name, tracer.counters[name])
    return table


def write_trace_json(tracer: "Tracer", path: str,
                     extra: Optional[Dict[str, Any]] = None) -> None:
    """Dump the full tracer snapshot (phases, counters, spans, events)."""
    payload = tracer.to_dict()
    if extra:
        payload["run"] = extra
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False, default=str)
        fh.write("\n")


def write_trace_csv(tracer: "Tracer", path: str) -> int:
    """Write retained spans as CSV rows; returns the row count."""
    fields = ["name", "job", "site", "start", "end", "elapsed", "status",
              "depth"]
    n = 0
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(fields)
        for span in tracer.spans:
            writer.writerow([
                span.name, span.job or "", span.site or "",
                f"{span.start:.9g}",
                "" if span.end is None else f"{span.end:.9g}",
                "" if span.end is None else f"{span.elapsed:.9g}",
                span.status, span.depth,
            ])
            n += 1
    return n
