"""Series utilities: the shape checks the experiment harness asserts.

The reproduction's success criterion is *shape*, not absolute numbers:
who wins, by roughly what factor, and where crossovers fall.  These
helpers turn raw per-sequence/per-iteration samples into those judgments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..sim.monitor import SummaryStats


@dataclass(frozen=True)
class Series:
    """A named sample vector (one curve of a paper figure)."""

    name: str
    values: Tuple[float, ...]

    @staticmethod
    def of(name: str, values) -> "Series":
        return Series(name, tuple(float(v) for v in values))

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if len(self.values) > 1 else 0.0

    def stats(self) -> SummaryStats:
        return SummaryStats.of(self.values)


def ranking(series: Mapping[str, Series]) -> List[str]:
    """Names ordered fastest (smallest mean) first."""
    return sorted(series, key=lambda name: series[name].mean)


def winner(series: Mapping[str, Series]) -> str:
    return ranking(series)[0]


def ratio(a: Series, b: Series) -> float:
    """mean(a) / mean(b) — the paper's "more than two times smaller"."""
    return a.mean / b.mean


def crossover_size(by_size_a: Mapping[int, Series],
                   by_size_b: Mapping[int, Series]) -> Optional[int]:
    """Smallest payload size at which ``a`` becomes faster than ``b``.

    Feed it e.g. {10: reliable@10B, ...} vs ssh to locate the Fig. 6
    reliable-beats-ssh crossover.  None if ``a`` never wins.
    """
    for size in sorted(set(by_size_a) & set(by_size_b)):
        if by_size_a[size].mean < by_size_b[size].mean:
            return size
    return None


def relative_increase(reference: Series, observed: Series) -> float:
    """(observed - reference) / reference, in fractional terms."""
    return (observed.mean - reference.mean) / reference.mean


def indistinguishable(a: Series, b: Series, tolerance: float = 0.02) -> bool:
    """True when two curves differ by < ``tolerance`` relative mean
    (Fig. 8: exclusive vs shared-alone "indistinguishable")."""
    if a.mean == 0:
        return b.mean == 0
    return abs(relative_increase(a, b)) < tolerance


def downsample(values: Sequence[float], buckets: int) -> List[float]:
    """Bucket means, for rendering long series compactly."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0 or buckets <= 0:
        return []
    if arr.size <= buckets:
        return [float(v) for v in arr]
    edges = np.linspace(0, arr.size, buckets + 1, dtype=int)
    return [float(arr[a:b].mean()) for a, b in zip(edges[:-1], edges[1:])
            if b > a]


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Unicode mini-chart of a series (for terminal experiment output)."""
    ticks = "▁▂▃▄▅▆▇█"
    data = downsample(values, width)
    if not data:
        return ""
    lo, hi = min(data), max(data)
    if hi - lo < 1e-12:
        return ticks[0] * len(data)
    out = []
    for v in data:
        idx = int((v - lo) / (hi - lo) * (len(ticks) - 1))
        out.append(ticks[idx])
    return "".join(out)
