"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def format_cell(value: Any, precision: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        magnitude = abs(value)
        if magnitude != 0 and magnitude < 10 ** (-precision):
            return f"{value:.2e}"
        return f"{value:.{precision}f}"
    return str(value)


class AsciiTable:
    """Minimal fixed-width table with a title and column alignment."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None,
                 precision: int = 2) -> None:
        self.title = title
        self.headers = list(headers)
        self.precision = precision
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}")
        self.rows.append([format_cell(c, self.precision) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+".join("-" * (w + 2) for w in widths)
        sep = f"+{sep}+"

        def line(cells: Sequence[str]) -> str:
            return "| " + " | ".join(
                c.ljust(w) if i == 0 else c.rjust(w)
                for i, (c, w) in enumerate(zip(cells, widths))) + " |"

        out: List[str] = []
        if self.title:
            out.append(self.title)
        out.append(sep)
        out.append(line(self.headers))
        out.append(sep)
        for row in self.rows:
            out.append(line(row))
        out.append(sep)
        return "\n".join(out)

    def render_markdown(self) -> str:
        out: List[str] = []
        if self.title:
            out.append(f"**{self.title}**")
            out.append("")
        out.append("| " + " | ".join(self.headers) + " |")
        out.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            out.append("| " + " | ".join(row) + " |")
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
