"""ASCII timeline (Gantt) rendering of a broker trace.

Turns a :class:`~repro.sim.EventTrace` into a per-job lifecycle chart:
submission, selection, agent planting, start, and completion markers on a
shared time axis — the quickest way to *see* what a scheduling scenario
did (the multiprogramming demo's "interactive job starts instantly on a
busy grid" is one glance here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.monitor import EventTrace

#: Marker glyphs by trace kind (first match wins when cells collide).
MARKERS = [
    ("failed", "!"),
    ("cancel", "x"),
    ("agent-died-resubmit", "R"),
    ("resubmit", "r"),
    ("agent-ready", "A"),
    ("selected", "s"),
    ("broker-queued", "q"),
    ("output-retrieved", "o"),
]


@dataclass
class JobLane:
    job_id: str
    submitted_at: float
    finished_at: Optional[float] = None
    events: List[Tuple[float, str]] = field(default_factory=list)


def _collect_lanes(trace: EventTrace) -> List[JobLane]:
    lanes: Dict[str, JobLane] = {}
    for record in trace.records:
        job_id = record.data.get("job")
        if job_id is None:
            continue
        if record.kind == "submit":
            lanes[job_id] = JobLane(job_id, record.time)
            continue
        lane = lanes.get(job_id)
        if lane is None:
            continue
        if record.kind == "finished":
            lane.finished_at = record.time
        else:
            lane.events.append((record.time, record.kind))
    return list(lanes.values())


def render_timeline(trace: EventTrace, width: int = 72,
                    max_jobs: int = 40) -> str:
    """Render one lane per job on a shared time axis.

    Legend: ``[`` submit … ``]`` finish, ``=`` running window, plus the
    kind markers (s selection done, A agent ready, r/R resubmissions,
    q broker-queued, o output retrieved, x cancelled, ! failed).
    """
    lanes = _collect_lanes(trace)
    if not lanes:
        return "(empty trace)"
    shown = lanes[:max_jobs]
    t_min = min(lane.submitted_at for lane in shown)
    t_max = max((lane.finished_at if lane.finished_at is not None
                 else max((t for t, _ in lane.events),
                          default=lane.submitted_at))
                for lane in shown)
    if t_max - t_min < 1e-9:
        t_max = t_min + 1.0
    span = t_max - t_min

    def column(time: float) -> int:
        fraction = (time - t_min) / span
        return min(int(fraction * (width - 1)), width - 1)

    label_width = max(len(lane.job_id) for lane in shown) + 1
    out: List[str] = [
        f"Timeline: {len(shown)} jobs, t=[{t_min:.1f}s .. {t_max:.1f}s]"
        + (f" ({len(lanes) - len(shown)} more not shown)"
           if len(lanes) > len(shown) else "")
    ]
    for lane in shown:
        row = [" "] * width
        start = column(lane.submitted_at)
        end = column(lane.finished_at) if lane.finished_at is not None \
            else width - 1
        for cell in range(start, end + 1):
            row[cell] = "="
        row[start] = "["
        if lane.finished_at is not None:
            row[end] = "]"
        for time, kind in lane.events:
            for prefix, glyph in MARKERS:
                if kind.startswith(prefix):
                    row[column(time)] = glyph
                    break
        out.append(f"{lane.job_id.rjust(label_width)} |{''.join(row)}|")
    out.append(" " * (label_width + 1)
               + f"+{'-' * width}+")
    out.append(" " * (label_width + 2)
               + "[ submit  = active  ] done  s selected  A agent-ready  "
                 "q queued  r/R resubmit  o output  x cancel  ! failed")
    return "\n".join(out)
