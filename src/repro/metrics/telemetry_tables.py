"""Telemetry post-processing: summary tables + sparkline overview.

Consumes a :meth:`repro.obs.Telemetry.snapshot` dict (the JSON-ready form
the runner carries through its cell cache), so the same renderers work on
a live registry, a merged multi-cell snapshot, or a cached one.  Every
renderer iterates sorted metric names — the output is deterministic
regardless of metric creation order.
"""

from __future__ import annotations

from typing import Any, List, Mapping

from .series import sparkline
from .tables import AsciiTable

__all__ = [
    "telemetry_counters_table",
    "telemetry_gauges_table",
    "telemetry_histograms_table",
    "telemetry_overview",
]


def telemetry_counters_table(snapshot: Mapping[str, Any],
                             title: str = "Telemetry counters") -> AsciiTable:
    table = AsciiTable(["counter", "value"], title=title, precision=3)
    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        value = counters[name]
        # Render integral totals as integers (chunk/job counts).
        if float(value).is_integer():
            value = int(value)
        table.add_row(name, value)
    return table


def telemetry_gauges_table(snapshot: Mapping[str, Any],
                           title: str = "Telemetry gauges") -> AsciiTable:
    table = AsciiTable(["gauge", "last", "min", "max", "updates"],
                       title=title, precision=3)
    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        g = gauges[name]
        table.add_row(name, g["last"], g["min"], g["max"], g["updates"])
    return table


def telemetry_histograms_table(snapshot: Mapping[str, Any],
                               title: str = "Telemetry histograms"
                               ) -> AsciiTable:
    table = AsciiTable(
        ["histogram", "count", "mean", "min", "p50", "p95", "max"],
        title=title, precision=4)
    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        h = histograms[name]
        table.add_row(name, h["count"], h["mean"], h["min"],
                      h.get("p50"), h.get("p95"), h["max"])
    return table


def telemetry_overview(snapshot: Mapping[str, Any], width: int = 42) -> str:
    """Sparkline-per-series text block (the ``repro top`` centrepiece).

    One line per recorded time series::

        broker.queue.batch      ▁▂▄█▅▂▁  last=0 n=57

    Values are the recorded ``(sim_time, value)`` points; the sparkline
    shows the decimated value trajectory over the run.
    """
    series = snapshot.get("series", {})
    if not series:
        return "(no time series recorded)"
    name_width = max(len(name) for name in series)
    lines: List[str] = []
    for name in sorted(series):
        points = series[name]
        values = [v for _, v in points]
        spark = sparkline(values, width=width) or "·"
        last = values[-1] if values else float("nan")
        if isinstance(last, float) and last.is_integer():
            last = int(last)
        lines.append(f"{name:<{name_width}}  {spark}  "
                     f"last={last} n={len(points)}")
    return "\n".join(lines)
