"""Measurement post-processing: tables, series, shape checks."""

from .figures import AsciiChart, series_chart, size_profile_chart
from .phases import (
    counters_table,
    job_breakdown_table,
    phase_breakdown_table,
    write_trace_csv,
    write_trace_json,
)
from .telemetry_tables import (
    telemetry_counters_table,
    telemetry_gauges_table,
    telemetry_histograms_table,
    telemetry_overview,
)
from .timeline import JobLane, render_timeline
from .series import (
    Series,
    crossover_size,
    downsample,
    indistinguishable,
    ranking,
    ratio,
    relative_increase,
    sparkline,
    winner,
)
from .tables import AsciiTable, format_cell

__all__ = [
    "AsciiChart",
    "AsciiTable",
    "JobLane",
    "counters_table",
    "job_breakdown_table",
    "phase_breakdown_table",
    "write_trace_csv",
    "write_trace_json",
    "render_timeline",
    "series_chart",
    "size_profile_chart",
    "Series",
    "crossover_size",
    "downsample",
    "format_cell",
    "indistinguishable",
    "ranking",
    "ratio",
    "relative_increase",
    "sparkline",
    "telemetry_counters_table",
    "telemetry_gauges_table",
    "telemetry_histograms_table",
    "telemetry_overview",
    "winner",
]
