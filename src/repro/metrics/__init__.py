"""Measurement post-processing: tables, series, shape checks."""

from .figures import AsciiChart, series_chart, size_profile_chart
from .timeline import JobLane, render_timeline
from .series import (
    Series,
    crossover_size,
    downsample,
    indistinguishable,
    ranking,
    ratio,
    relative_increase,
    sparkline,
    winner,
)
from .tables import AsciiTable, format_cell

__all__ = [
    "AsciiChart",
    "AsciiTable",
    "JobLane",
    "render_timeline",
    "series_chart",
    "size_profile_chart",
    "Series",
    "crossover_size",
    "downsample",
    "format_cell",
    "indistinguishable",
    "ranking",
    "ratio",
    "relative_increase",
    "sparkline",
    "winner",
]
