"""Lightweight virtual machines (execution slots).

§5.2: "Each machine acquired by our agent is configured as two virtual
machines... the machine only runs one O/S, but we split the machine into
two separate execution slots."  A :class:`VmSlot` is bookkeeping — which
job occupies the slot and with what CPU role — while the actual CPU
arbitration lives in :class:`repro.grid.cpu.WorkerCpu`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class VmKind(enum.Enum):
    BATCH = "batch-vm"
    INTERACTIVE = "interactive-vm"


@dataclass
class VmSlot:
    """One execution slot of a glide-in-managed machine."""

    kind: VmKind
    occupant: Optional[str] = None
    occupied_since: Optional[float] = None
    jobs_run: int = 0

    @property
    def is_free(self) -> bool:
        return self.occupant is None

    def occupy(self, label: str, now: float) -> None:
        if self.occupant is not None:
            raise RuntimeError(f"{self.kind.value} already runs {self.occupant}")
        self.occupant = label
        self.occupied_since = now
        self.jobs_run += 1

    def vacate(self, label: str) -> None:
        if self.occupant != label:
            raise RuntimeError(
                f"{self.kind.value}: vacate by {label!r}, occupant is "
                f"{self.occupant!r}")
        self.occupant = None
        self.occupied_since = None
