"""Broker-side agent registry.

§6.1: "the first two steps [discovery/selection] are not required for
interactive jobs that want to run on an Interactive Virtual Machine because
the information about existing VMs is kept locally by CrossBroker" — this
registry *is* that local information, fed by the agents' registration
callbacks, so looking up a free interactive VM costs no network round trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim import Environment
from .agent import AgentRuntime


@dataclass
class AgentRecord:
    runtime: AgentRuntime
    site: str
    registered_at: float


class AgentRegistry:
    """Tracks every live glide-in agent the broker has planted."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._records: Dict[str, AgentRecord] = {}
        #: Agents that died (for resubmission bookkeeping and tests).
        self.deaths: List[str] = []

    def register(self, runtime: AgentRuntime, site: str) -> AgentRecord:
        record = AgentRecord(runtime, site, self.env.now)
        self._records[runtime.agent_id] = record
        t = self.env.telemetry
        if t is not None:
            t.gauge("vm.agents_live").set(len(self._records))
        self.env.process(self._watch(runtime), name=f"watch/{runtime.agent_id}")
        return record

    def _watch(self, runtime: AgentRuntime):
        yield runtime.leave | runtime.dead
        if runtime.dead.triggered:
            self.deaths.append(runtime.agent_id)
        self._records.pop(runtime.agent_id, None)
        t = self.env.telemetry
        if t is not None:
            t.gauge("vm.agents_live").set(len(self._records))

    # -- lookups (local, zero network cost by design) -----------------------
    def live_agents(self) -> List[AgentRecord]:
        return [r for r in self._records.values() if r.runtime.is_alive]

    def free_interactive(self, site: Optional[str] = None) -> List[AgentRecord]:
        return [r for r in self.live_agents()
                if r.runtime.interactive_free
                and (site is None or r.site == site)]

    def free_batch(self, site: Optional[str] = None) -> List[AgentRecord]:
        return [r for r in self.live_agents()
                if r.runtime.batch_free and (site is None or r.site == site)]

    def __len__(self) -> int:
        return len(self._records)
