"""Multiprogramming: glide-in agents, lightweight VMs, CPU sharing."""

from .agent import AGENT_PORT, AgentJobTicket, AgentRuntime
from .registry import AgentRecord, AgentRegistry
from .vm import VmKind, VmSlot

__all__ = [
    "AGENT_PORT",
    "AgentJobTicket",
    "AgentRecord",
    "AgentRegistry",
    "AgentRuntime",
    "VmKind",
    "VmSlot",
]
