"""The glide-in job agent.

§5.2: "This multi-programming scheme takes advantage of the Condor
Glide-In mechanism, and is based on the transparent submission of job
agents for jobs submitted by the user.  The agent gains control of remote
machines independently of the local-site job manager."

The agent is submitted *through* the normal GRAM + LRMS path like any
batch job (which is why Table I's "job + agent" row is the slowest).  Once
its behavior starts on a worker node it:

1. pays the glide-in boot cost,
2. splits the node into ``batch-vm`` and ``interactive-vm`` slots,
3. opens an RPC endpoint on the node and registers with its broker,
4. serves ``agent.run_job`` dispatches until told (or deciding) to leave —
   the direct broker->agent channel that makes the shared-VM row of
   Table I fast.

Interactive jobs run at higher priority; the co-located batch job receives
``PerformanceLoss`` % of the CPU (see :mod:`repro.grid.cpu`).  When the
batch job completes and no interactive job remains, the agent leaves the
machine (§5.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional

from ..calibration import MiddlewareCosts
from ..net import Network, RpcServer
from ..sim import Environment, Event, RandomStreams
from ..grid.errors import NoResourcesError
from ..grid.workernode import Behavior, MachineContext, WorkerNode
from .vm import VmKind, VmSlot

AGENT_PORT = 9618  # Condor's collector port, in homage.

def _next_agent_id(node) -> str:
    """Per-node agent numbering: agent ids key RNG streams, so they must
    not depend on global interpreter state across repeated runs."""
    sequence = getattr(node, "_agent_seq", 0) + 1
    node._agent_seq = sequence
    return f"agent-{node.name}-{sequence}"


@dataclass
class AgentJobTicket:
    """Broker-visible record of a job dispatched to an agent."""

    label: str
    vm: VmKind
    started: Event
    finished: Event
    node_host: str


class AgentRuntime:
    """The agent process while it owns a worker node."""

    def __init__(self, env: Environment, network: Network, rng: RandomStreams,
                 node: WorkerNode, costs: MiddlewareCosts,
                 agent_id: Optional[str] = None,
                 interactive_slots: int = 1) -> None:
        if interactive_slots < 1:
            raise ValueError("interactive_slots must be >= 1")
        self.env = env
        self.network = network
        self.rng = rng
        self.node = node
        self.costs = costs
        self.agent_id = agent_id or _next_agent_id(node)
        #: Two VMs by default; §5.2's future-work knob ("a larger degree of
        #: multi-programming, creating dynamically more than two virtual
        #: machines") raises ``interactive_slots``.
        self.slots: Dict[VmKind, list] = {
            VmKind.BATCH: [VmSlot(VmKind.BATCH)],
            VmKind.INTERACTIVE: [VmSlot(VmKind.INTERACTIVE)
                                 for _ in range(interactive_slots)],
        }
        self.ready = env.event()
        self.leave = env.event()
        self.dead = env.event()
        self.server: Optional[RpcServer] = None
        self._batch_done = False
        self.jobs_dispatched = 0
        #: label -> running guest process (killed with the agent).
        self._guests: Dict[str, object] = {}

    # -- queries the broker makes locally (its own registry) ---------------
    def _free_slot(self, kind: VmKind) -> Optional[VmSlot]:
        for slot in self.slots[kind]:
            if slot.is_free:
                return slot
        return None

    @property
    def interactive_free(self) -> bool:
        return self._free_slot(VmKind.INTERACTIVE) is not None

    @property
    def batch_free(self) -> bool:
        return self._free_slot(VmKind.BATCH) is not None

    @property
    def is_alive(self) -> bool:
        return self.ready.triggered and not self.dead.triggered \
            and not self.leave.triggered

    # -- the dispatch handler ------------------------------------------------
    def run_job(self, label: str, behavior: Behavior, interactive: bool,
                performance_loss: int = 0,
                setup: Optional[Callable[[MachineContext], None]] = None,
                daemon: Optional[bool] = None) -> Generator:
        """RPC handler: place a job on the matching VM slot and start it.

        ``daemon=True`` marks a guest that runs for the rest of the
        simulation by design (a background CPU hog, a measurement
        peer); the sanitizer then exempts its whole execution chain.
        The default (``None``) inherits the dispatching process's flag,
        so a ``daemon=True`` broker submission stays daemon end-to-end.
        """
        kind = VmKind.INTERACTIVE if interactive else VmKind.BATCH
        slot = self._free_slot(kind)
        if slot is None:
            raise NoResourcesError(f"{self.agent_id}: no free {kind.value}")
        if self.leave.triggered or self.dead.triggered:
            raise NoResourcesError(f"{self.agent_id}: agent is gone")
        # Reserve the slot immediately (so the agent cannot decide to leave
        # mid-dispatch), then pay the slot preparation: sandbox dir,
        # environment, priority plumbing.
        tr = self.env.tracer
        span = tr.begin("vm_acquire", job=label, site=self.node.site,
                        agent=self.agent_id, vm=kind.value) \
            if tr is not None else None
        slot.occupy(label, self.env.now)
        self.jobs_dispatched += 1
        t = self.env.telemetry
        if t is not None:
            t.counter("vm.dispatches").inc()
            t.counter(f"vm.dispatches.{kind.value}").inc()
            t.gauge(f"vm.slots_busy.{kind.value}").inc()
        yield self.env.timeout(self.rng.jitter(
            f"{self.agent_id}/slot-setup", self.costs.agent_slot_setup, 0.12))
        ticket = AgentJobTicket(label, kind, self.env.event(),
                                self.env.event(), self.node.name)
        if tr is not None:
            tr.end(span)
            tr.count("vm_dispatches", job=label, site=self.node.site)

        def job_runner() -> Generator:
            proc = self.node.execute(behavior, label, interactive=interactive,
                                     performance_loss=performance_loss,
                                     setup=setup)
            self._guests[label] = proc
            ticket.started.succeed(self.env.now)
            try:
                result = yield proc
                ticket.finished.succeed(result)
            except Exception as exc:  # noqa: BLE001 - surfaced via ticket
                ticket.finished.fail(exc)
                ticket.finished.defuse()
            finally:
                self._guests.pop(label, None)
                slot.vacate(label)
                t = self.env.telemetry
                if t is not None:
                    t.gauge(f"vm.slots_busy.{kind.value}").dec()
                if kind is VmKind.BATCH:
                    self._batch_done = True
                self._maybe_leave()

        self.env.process(job_runner(), name=f"{self.agent_id}/{label}",
                         daemon=daemon)
        return ticket

    def _maybe_leave(self) -> None:
        """§5.2: after completion of the batch job the agent leaves —
        once any interactive guest has drained too."""
        if self._batch_done and self.batch_free and self.interactive_free \
                and not self.leave.triggered:
            self.leave.succeed(self.env.now)
            tr = self.env.tracer
            if tr is not None:
                tr.count("agents_left", site=self.node.site)

    def kill(self, cause: str = "killed") -> None:
        """The local scheduler (or a node crash) killed the agent.

        Everything under the agent goes with it — the LRMS tears down the
        whole glide-in sandbox, guests included (§5.2: "Special care has
        to be taken if the agent is killed... In this case, new agents
        will be submitted when possible").
        """
        if not self.dead.triggered:
            self.dead.succeed(cause)
        tr = self.env.tracer
        if tr is not None:
            tr.count("agents_killed", site=self.node.site)
            tr.event("agent_killed", agent=self.agent_id, cause=cause,
                     guests=len(self._guests))
        if self.server is not None:
            self.server.close()
        from ..grid.errors import AgentDeadError

        for label, proc in list(self._guests.items()):
            if getattr(proc, "is_alive", False):
                try:
                    proc.interrupt(AgentDeadError(
                        f"{self.agent_id} killed: {cause}"))
                except Exception:  # noqa: BLE001  # simlint: disable=swallowed-error -- best-effort kill of an already-terminating process
                    continue

    # -- the behavior submitted through GRAM/LRMS ---------------------------
    def behavior(self, on_ready: Optional[Callable[["AgentRuntime"], None]] = None,
                 ) -> Behavior:
        """Build the LRMS-submittable behavior that boots this runtime."""

        def agent_behavior(ctx: MachineContext) -> Generator:
            # Glide-in boot: unpack the transferred sandbox, start daemons.
            yield from ctx.io(self.rng.jitter(
                f"{self.agent_id}/boot", self.costs.glidein_boot, 0.10))
            self.server = RpcServer(self.network, self.node.name, AGENT_PORT,
                                    name=self.agent_id)
            self.server.register("agent.run_job", self.run_job)
            self.server.register("agent.ping", lambda: self.agent_id)
            self.ready.succeed(self.env.now)
            if on_ready is not None:
                on_ready(self)
            outcome = yield self.leave | self.dead
            if self.server is not None:
                self.server.close()
            return "left" if self.leave.triggered else f"dead:{self.dead.value}"

        return agent_behavior
