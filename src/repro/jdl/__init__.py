"""Job Description Language: parser, expression evaluator, typed job model."""

from .expr import (
    Binary,
    Call,
    Context,
    EvalError,
    Expr,
    Literal,
    Ref,
    UNDEFINED,
    Unary,
    evaluate,
    matches,
    rank_value,
)
from .job import (
    JdlValidationError,
    JobCategory,
    JobDescription,
    JobFlavor,
    MachineAccess,
    StreamingMode,
)
from .lexer import JdlSyntaxError, Token, tokenize
from .parser import parse_document, parse_expression

__all__ = [
    "Binary",
    "Call",
    "Context",
    "EvalError",
    "Expr",
    "JdlSyntaxError",
    "JdlValidationError",
    "JobCategory",
    "JobDescription",
    "JobFlavor",
    "Literal",
    "MachineAccess",
    "Ref",
    "StreamingMode",
    "Token",
    "UNDEFINED",
    "Unary",
    "evaluate",
    "matches",
    "parse_document",
    "parse_expression",
    "rank_value",
    "tokenize",
]
