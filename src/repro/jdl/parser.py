"""Recursive-descent parser for JDL documents and classad expressions.

Grammar (paper Figure 2 dialect)::

    document   := { entry }
    entry      := IDENT '=' value ';'
    value      := list | expr
    list       := '{' [ value { ',' value } ] '}'
    expr       := ternary-free classad expression with precedence
                  ||  &&  ==/!=  </<=/>/>=  +/-  */   unary !/-  primary
    primary    := literal | reference | call | '(' expr ')'
    reference  := IDENT [ '.' IDENT ]        (scope 'other'/'self' or bare)
    call       := IDENT '(' [ expr {',' expr} ] ')'

A *document* maps attribute names (lower-cased) to plain Python values
where the value is a literal or list of literals, and to
:class:`~repro.jdl.expr.Expr` trees otherwise (``Requirements``/``Rank``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .expr import Binary, Call, Expr, Literal, Ref, UNDEFINED, Unary
from .lexer import JdlSyntaxError, Token, tokenize

_KEYWORD_LITERALS = {"true": True, "false": False}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers --------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self._current
        return token.kind == kind and (value is None or token.value == value)

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self._check(kind, value):
            token = self._current
            want = value or kind
            raise JdlSyntaxError(
                f"expected {want!r}, found {token.value!r} ({token.kind})",
                token.line, token.column)
        return self._advance()

    def _error(self, message: str) -> JdlSyntaxError:
        token = self._current
        return JdlSyntaxError(message, token.line, token.column)

    # -- document --------------------------------------------------------
    def parse_document(self) -> Dict[str, Any]:
        entries: Dict[str, Any] = {}
        # Tolerate an optional classad-style '[' ... ']' wrapper.
        bracketed = False
        if self._check("PUNCT", "["):
            self._advance()
            bracketed = True
        while not self._check("EOF"):
            if bracketed and self._check("PUNCT", "]"):
                self._advance()
                break
            name = self._expect("IDENT").value
            self._expect("OP", "=")
            value = self.parse_value()
            self._expect("PUNCT", ";")
            key = name.lower()
            if key in entries:
                raise self._error(f"duplicate attribute {name!r}")
            entries[key] = value
        return entries

    # -- values -----------------------------------------------------------
    def parse_value(self) -> Any:
        if self._check("PUNCT", "{"):
            return self._parse_list()
        expr = self.parse_expr()
        return _simplify(expr)

    def _parse_list(self) -> List[Any]:
        self._expect("PUNCT", "{")
        items: List[Any] = []
        if not self._check("PUNCT", "}"):
            while True:
                items.append(self.parse_value())
                if self._check("PUNCT", ","):
                    self._advance()
                    continue
                break
        self._expect("PUNCT", "}")
        return items

    # -- expressions (precedence climbing) ---------------------------------
    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._check("OP", "||"):
            self._advance()
            left = Binary("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_equality()
        while self._check("OP", "&&"):
            self._advance()
            left = Binary("&&", left, self._parse_equality())
        return left

    def _parse_equality(self) -> Expr:
        left = self._parse_relational()
        while self._current.kind == "OP" and self._current.value in ("==", "!="):
            op = self._advance().value
            left = Binary(op, left, self._parse_relational())
        return left

    def _parse_relational(self) -> Expr:
        left = self._parse_additive()
        while self._current.kind == "OP" and self._current.value in ("<", "<=", ">", ">="):
            op = self._advance().value
            left = Binary(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._current.kind == "OP" and self._current.value in ("+", "-"):
            op = self._advance().value
            left = Binary(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._current.kind == "OP" and self._current.value in ("*", "/"):
            op = self._advance().value
            left = Binary(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self._current.kind == "OP" and self._current.value in ("!", "-"):
            op = self._advance().value
            return Unary(op, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._current
        if token.kind == "STRING":
            self._advance()
            return Literal(token.value)
        if token.kind == "NUMBER":
            self._advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "PUNCT" and token.value == "(":
            self._advance()
            expr = self.parse_expr()
            self._expect("PUNCT", ")")
            return expr
        if token.kind == "IDENT":
            self._advance()
            lowered = token.value.lower()
            if lowered in _KEYWORD_LITERALS:
                return Literal(_KEYWORD_LITERALS[lowered])
            if lowered == "undefined":
                return Literal(UNDEFINED)
            # Function call?
            if self._check("PUNCT", "("):
                self._advance()
                args: List[Expr] = []
                if not self._check("PUNCT", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if self._check("PUNCT", ","):
                            self._advance()
                            continue
                        break
                self._expect("PUNCT", ")")
                return Call(token.value, tuple(args))
            # Scoped reference?
            if self._check("OP", "."):
                self._advance()
                member = self._expect("IDENT").value
                scope = lowered if lowered in ("other", "self") else None
                if scope is None:
                    raise JdlSyntaxError(
                        f"unknown scope {token.value!r} (expected other/self)",
                        token.line, token.column)
                return Ref(scope, member)
            return Ref(None, token.value)
        raise self._error(f"unexpected token {token.value!r}")


def _simplify(expr: Expr) -> Any:
    """Collapse literal-only expressions to plain Python values."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Unary) and expr.op == "-" and isinstance(expr.operand, Literal):
        value = expr.operand.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return -value
    return expr


def parse_document(text: str) -> Dict[str, Any]:
    """Parse a full JDL document into an attribute dict."""
    return _Parser(tokenize(text)).parse_document()


def parse_expression(text: str) -> Expr:
    """Parse a standalone classad expression (for Requirements/Rank)."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    parser._expect("EOF")
    return expr
