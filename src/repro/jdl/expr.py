"""Classad-style expression AST and evaluator.

``Requirements`` and ``Rank`` JDL attributes are expressions evaluated
against a *candidate resource* context: identifiers of the form
``other.Attr`` resolve to the resource's advertised attributes (the
Globus-MDS/GLUE values published by the information system), and bare
identifiers resolve to the job's own attributes.

Undefined references follow classad three-valued semantics: they evaluate
to :data:`UNDEFINED`, comparisons against UNDEFINED are UNDEFINED, and a
Requirements expression only matches when it evaluates to exactly ``True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence, Tuple, Union


class _Undefined:
    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNDEFINED"


UNDEFINED = _Undefined()


class EvalError(ValueError):
    """Raised when an expression cannot be evaluated (e.g. type error)."""


# -- AST nodes ------------------------------------------------------------
@dataclass(frozen=True)
class Literal:
    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return str(self.value)


@dataclass(frozen=True)
class Ref:
    """Attribute reference, e.g. ``other.TotalCPUs`` or ``NodeNumber``."""

    scope: Optional[str]  # "other", "self", or None for bare names
    name: str

    def __str__(self) -> str:
        return f"{self.scope}.{self.name}" if self.scope else self.name


@dataclass(frozen=True)
class Unary:
    op: str  # "!", "-"
    operand: "Expr"

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class Binary:
    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Call:
    """Builtin function call, e.g. ``Member(x, list)``."""

    name: str
    args: Tuple["Expr", ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


Expr = Union[Literal, Ref, Unary, Binary, Call]


# -- evaluation -------------------------------------------------------------
def _is_num(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _builtin_member(item: Any, collection: Any) -> Any:
    if collection is UNDEFINED or item is UNDEFINED:
        return UNDEFINED
    if not isinstance(collection, (list, tuple)):
        raise EvalError("Member() needs a list second argument")
    return item in collection


def _builtin_regexp(pattern: Any, target: Any) -> Any:
    if pattern is UNDEFINED or target is UNDEFINED:
        return UNDEFINED
    import re

    return re.search(str(pattern), str(target)) is not None


_BUILTINS: Mapping[str, Callable[..., Any]] = {
    "member": _builtin_member,
    "regexp": _builtin_regexp,
    "isundefined": lambda v: v is UNDEFINED,
}


class Context:
    """Name-resolution environment for expression evaluation."""

    def __init__(self, own: Mapping[str, Any],
                 other: Optional[Mapping[str, Any]] = None) -> None:
        # Classads are case-insensitive; normalise key lookup.
        self._own = {k.lower(): v for k, v in own.items()}
        self._other = {k.lower(): v for k, v in (other or {}).items()}

    def resolve(self, ref: Ref) -> Any:
        name = ref.name.lower()
        if ref.scope == "other":
            return self._other.get(name, UNDEFINED)
        if ref.scope == "self":
            return self._own.get(name, UNDEFINED)
        if name in self._own:
            return self._own[name]
        return self._other.get(name, UNDEFINED)


def evaluate(expr: Expr, context: Context) -> Any:
    """Evaluate with classad three-valued logic for UNDEFINED."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Ref):
        return context.resolve(expr)
    if isinstance(expr, Unary):
        value = evaluate(expr.operand, context)
        if value is UNDEFINED:
            return UNDEFINED
        if expr.op == "!":
            if not isinstance(value, bool):
                raise EvalError(f"'!' needs a boolean, got {value!r}")
            return not value
        if expr.op == "-":
            if not _is_num(value):
                raise EvalError(f"unary '-' needs a number, got {value!r}")
            return -value
        raise EvalError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, Binary):
        return _eval_binary(expr, context)
    if isinstance(expr, Call):
        fn = _BUILTINS.get(expr.name.lower())
        if fn is None:
            raise EvalError(f"unknown function {expr.name!r}")
        args = [evaluate(a, context) for a in expr.args]
        return fn(*args)
    raise EvalError(f"unknown node {expr!r}")  # pragma: no cover


def _eval_binary(expr: Binary, context: Context) -> Any:
    op = expr.op
    # Short-circuit logic with UNDEFINED absorption (classad semantics:
    # false && undefined == false; true || undefined == true).
    if op in ("&&", "||"):
        left = evaluate(expr.left, context)
        if op == "&&":
            if left is False:
                return False
            right = evaluate(expr.right, context)
            if left is UNDEFINED or right is UNDEFINED:
                return False if right is False else UNDEFINED
            _require_bool(left, right, op)
            return left and right
        if left is True:
            return True
        right = evaluate(expr.right, context)
        if left is UNDEFINED or right is UNDEFINED:
            return True if right is True else UNDEFINED
        _require_bool(left, right, op)
        return left or right

    left = evaluate(expr.left, context)
    right = evaluate(expr.right, context)
    if left is UNDEFINED or right is UNDEFINED:
        return UNDEFINED

    if op in ("==", "!="):
        if isinstance(left, str) and isinstance(right, str):
            result = left.lower() == right.lower()
        else:
            result = left == right
        return result if op == "==" else not result

    if op in ("<", "<=", ">", ">="):
        if isinstance(left, str) and isinstance(right, str):
            pass  # lexicographic comparison is allowed
        elif not (_is_num(left) and _is_num(right)):
            raise EvalError(f"{op!r} needs two numbers or two strings")
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right

    if op in ("+", "-", "*", "/"):
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        if not (_is_num(left) and _is_num(right)):
            raise EvalError(f"{op!r} needs two numbers")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            raise EvalError("division by zero")
        return left / right

    raise EvalError(f"unknown operator {op!r}")  # pragma: no cover


def _require_bool(left: Any, right: Any, op: str) -> None:
    if not isinstance(left, bool) or not isinstance(right, bool):
        raise EvalError(f"{op!r} needs boolean operands")


def matches(requirements: Optional[Expr], own: Mapping[str, Any],
            other: Mapping[str, Any]) -> bool:
    """True iff ``requirements`` evaluates to exactly True (or is absent)."""
    if requirements is None:
        return True
    value = evaluate(requirements, Context(own, other))
    return value is True


def rank_value(rank: Optional[Expr], own: Mapping[str, Any],
               other: Mapping[str, Any]) -> float:
    """Numeric rank of a candidate (higher is better); 0.0 if absent."""
    if rank is None:
        return 0.0
    value = evaluate(rank, Context(own, other))
    if value is UNDEFINED:
        return float("-inf")
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if not _is_num(value):
        raise EvalError(f"Rank must be numeric, got {value!r}")
    return float(value)
