"""Tokenizer for the Job Description Language (JDL).

The JDL used by CrossGrid (paper Figure 2) is the EU DataGrid classad
dialect: ``Attribute = value;`` entries where values are strings, numbers,
booleans, brace-delimited lists, or classad expressions (for
``Requirements`` and ``Rank``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


class JdlSyntaxError(ValueError):
    """Raised on malformed JDL input."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    kind: str  # IDENT, STRING, NUMBER, OP, PUNCT, EOF
    value: str
    line: int
    column: int


_PUNCT = set("{}();,[]")
# Multi-char operators first so '>=' wins over '>'.
_OPERATORS = ["&&", "||", "==", "!=", ">=", "<=", ">", "<", "!", "+", "-",
              "*", "/", "=", "?", ":", "."]


def tokenize(text: str) -> List[Token]:
    """Turn JDL source into a token list ending with an EOF token."""
    tokens: List[Token] = []
    line, col = 1, 1
    i, n = 0, len(text)

    def error(msg: str) -> JdlSyntaxError:
        return JdlSyntaxError(msg, line, col)

    while i < n:
        ch = text[i]
        # Whitespace / newlines.
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # Comments: // to end of line, /* ... */, and # to end of line.
        if text.startswith("//", i) or ch == "#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            for c in text[i:end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        # Strings.
        if ch == '"':
            j = i + 1
            buf: List[str] = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j + 1])
                    j += 2
                elif text[j] == "\n":
                    raise error("unterminated string literal")
                else:
                    buf.append(text[j])
                    j += 1
            if j >= n:
                raise error("unterminated string literal")
            tokens.append(Token("STRING", "".join(buf), line, col))
            col += j + 1 - i
            i = j + 1
            continue
        # Numbers (int or float).
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is a member-access op.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], line, col))
            col += j - i
            i = j
            continue
        # Identifiers / keywords.
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("IDENT", text[i:j], line, col))
            col += j - i
            i = j
            continue
        # Punctuation.
        if ch in _PUNCT:
            tokens.append(Token("PUNCT", ch, line, col))
            i += 1
            col += 1
            continue
        # Operators.
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")

    tokens.append(Token("EOF", "", line, col))
    return tokens


def iter_tokens(text: str) -> Iterator[Token]:  # pragma: no cover - thin
    return iter(tokenize(text))
