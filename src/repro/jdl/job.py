"""Typed job model: the validated form of a JDL document.

Mirrors the attributes of paper Figure 2 plus the interactivity attributes
of §3 (StreamingMode, MachineAccess, PerformanceLoss) and §4 (the optional
user-pinned shadow port for firewall traversal).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from .expr import Expr
from .parser import parse_document, parse_expression


class JdlValidationError(ValueError):
    """Raised when a JDL document is syntactically fine but semantically bad."""


class JobCategory(enum.Enum):
    BATCH = "batch"
    INTERACTIVE = "interactive"


class JobFlavor(enum.Enum):
    SEQUENTIAL = "sequential"
    MPICH_P4 = "mpich-p4"
    MPICH_G2 = "mpich-g2"


class StreamingMode(enum.Enum):
    """§3: reliable buffers to disk and retries; fast ships unbuffered."""

    RELIABLE = "reliable"
    FAST = "fast"


class MachineAccess(enum.Enum):
    """§3: exclusive waits for an idle machine; shared uses the
    multiprogramming agent's interactive VM."""

    EXCLUSIVE = "exclusive"
    SHARED = "shared"


_job_counter = itertools.count(1)


def _next_job_id() -> str:
    return f"job-{next(_job_counter):06d}"


@dataclass
class JobDescription:
    """A validated job, ready for submission to the CrossBroker."""

    executable: str
    arguments: Tuple[str, ...] = ()
    owner: str = "anonymous"
    category: JobCategory = JobCategory.BATCH
    flavor: JobFlavor = JobFlavor.SEQUENTIAL
    node_number: int = 1
    streaming_mode: StreamingMode = StreamingMode.RELIABLE
    machine_access: MachineAccess = MachineAccess.EXCLUSIVE
    #: Percentage of CPU the interactive job leaves to a co-located batch
    #: job (multiples of 5; §3).
    performance_loss: int = 0
    requirements: Optional[Expr] = None
    rank: Optional[Expr] = None
    #: User-pinned shadow port (None -> randomly probed; §4).
    shadow_port: Optional[int] = None
    #: Input sandbox files: (name, size in bytes).
    input_sandbox: Tuple[Tuple[str, int], ...] = ()
    #: Output sandbox files the job produces, staged back after completion
    #: (§1: the user "retrieves the output after the job is executed").
    output_sandbox: Tuple[Tuple[str, int], ...] = ()
    #: Estimated runtime, used by workload generators (not by the broker).
    estimated_runtime: Optional[float] = None
    #: Raw attribute dict (the job side of matchmaking contexts).
    raw: Dict[str, Any] = field(default_factory=dict)
    job_id: str = field(default_factory=_next_job_id)

    # -- derived ----------------------------------------------------------
    @property
    def is_interactive(self) -> bool:
        return self.category is JobCategory.INTERACTIVE

    @property
    def is_parallel(self) -> bool:
        return self.flavor is not JobFlavor.SEQUENTIAL

    @property
    def wants_shared_vm(self) -> bool:
        return self.is_interactive and self.machine_access is MachineAccess.SHARED

    @property
    def console_agents(self) -> int:
        """Number of Console Agents (one per MPICH-G2 subjob, else one; §4)."""
        if self.flavor is JobFlavor.MPICH_G2:
            return self.node_number
        return 1

    def matchmaking_context(self) -> Dict[str, Any]:
        """The job-side ("self") attribute set for Requirements/Rank."""
        context = {
            "executable": self.executable,
            "jobtype": [self.category.value, self.flavor.value],
            "nodenumber": self.node_number,
            "performanceloss": self.performance_loss,
        }
        context.update(self.raw)
        return context

    def clone(self, **overrides: Any) -> "JobDescription":
        """A copy with a fresh job id (used by resubmission and sweeps)."""
        overrides.setdefault("job_id", _next_job_id())
        return replace(self, **overrides)

    # -- construction -------------------------------------------------------
    @classmethod
    def from_jdl(cls, text: str, owner: str = "anonymous") -> "JobDescription":
        """Parse and validate a JDL document (paper Figure 2 syntax)."""
        doc = parse_document(text)
        return cls.from_attributes(doc, owner=owner)

    @classmethod
    def from_attributes(cls, doc: Dict[str, Any], owner: str = "anonymous") -> "JobDescription":
        doc = {k.lower(): v for k, v in doc.items()}

        executable = doc.pop("executable", None)
        if not isinstance(executable, str) or not executable:
            raise JdlValidationError("Executable is required and must be a string")

        arguments = doc.pop("arguments", ())
        if isinstance(arguments, str):
            arguments = tuple(arguments.split())
        elif isinstance(arguments, (list, tuple)):
            arguments = tuple(str(a) for a in arguments)
        else:
            raise JdlValidationError("Arguments must be a string or list")

        category, flavor = _parse_job_type(doc.pop("jobtype", "batch"))

        node_number = doc.pop("nodenumber", 1)
        if not isinstance(node_number, int) or isinstance(node_number, bool):
            raise JdlValidationError("NodeNumber must be an integer")

        streaming = _parse_enum(StreamingMode, doc.pop("streamingmode", "reliable"),
                                "StreamingMode")
        access = _parse_enum(MachineAccess, doc.pop("machineaccess", "exclusive"),
                             "MachineAccess")

        perf_loss = doc.pop("performanceloss", 0)
        if not isinstance(perf_loss, int) or isinstance(perf_loss, bool):
            raise JdlValidationError("PerformanceLoss must be an integer")

        requirements = _coerce_expr(doc.pop("requirements", None), "Requirements")
        rank = _coerce_expr(doc.pop("rank", None), "Rank")

        shadow_port = doc.pop("shadowport", None)
        if shadow_port is not None and (not isinstance(shadow_port, int)
                                        or isinstance(shadow_port, bool)):
            raise JdlValidationError("ShadowPort must be an integer")

        sandbox = _parse_sandbox(doc.pop("inputsandbox", []), "InputSandbox")
        out_sandbox = _parse_sandbox(doc.pop("outputsandbox", []),
                                     "OutputSandbox")

        runtime = doc.pop("estimatedruntime", None)
        if runtime is not None and not isinstance(runtime, (int, float)):
            raise JdlValidationError("EstimatedRuntime must be numeric")

        job = cls(
            executable=executable,
            arguments=arguments,
            owner=owner,
            category=category,
            flavor=flavor,
            node_number=node_number,
            streaming_mode=streaming,
            machine_access=access,
            performance_loss=perf_loss,
            requirements=requirements,
            rank=rank,
            shadow_port=shadow_port,
            input_sandbox=tuple(sandbox),
            output_sandbox=tuple(out_sandbox),
            estimated_runtime=float(runtime) if runtime is not None else None,
            raw=doc,
        )
        job.validate()
        return job

    # -- validation -----------------------------------------------------------
    def validate(self) -> None:
        if self.node_number < 1:
            raise JdlValidationError("NodeNumber must be >= 1")
        if self.flavor is JobFlavor.SEQUENTIAL and self.node_number != 1:
            raise JdlValidationError("sequential jobs must have NodeNumber = 1")
        if self.performance_loss < 0 or self.performance_loss > 100:
            raise JdlValidationError("PerformanceLoss must be in [0, 100]")
        if self.performance_loss % 5 != 0:
            # Paper §3: "Values for Performance Loss can be 0, 5, 10, 15..."
            raise JdlValidationError("PerformanceLoss must be a multiple of 5")
        if self.performance_loss and not self.wants_shared_vm:
            raise JdlValidationError(
                "PerformanceLoss only applies to interactive shared-access jobs")
        if self.machine_access is MachineAccess.SHARED and not self.is_interactive:
            raise JdlValidationError("shared MachineAccess requires an interactive job")
        if self.shadow_port is not None and not (1024 <= self.shadow_port <= 65535):
            raise JdlValidationError("ShadowPort must be in [1024, 65535]")

    # -- serialisation -----------------------------------------------------
    def to_jdl(self) -> str:
        """Render back to JDL text (Figure 2 style)."""
        lines = [f'Executable = "{self.executable}";']
        if self.arguments:
            lines.append(f'Arguments = "{" ".join(self.arguments)}";')
        lines.append(
            f'JobType = {{"{self.category.value}", "{self.flavor.value}"}};')
        lines.append(f"NodeNumber = {self.node_number};")
        if self.is_interactive:
            lines.append(f'StreamingMode = "{self.streaming_mode.value}";')
            lines.append(f'MachineAccess = "{self.machine_access.value}";')
            if self.wants_shared_vm:
                lines.append(f"PerformanceLoss = {self.performance_loss};")
        if self.requirements is not None:
            lines.append(f"Requirements = {self.requirements};")
        if self.rank is not None:
            lines.append(f"Rank = {self.rank};")
        if self.shadow_port is not None:
            lines.append(f"ShadowPort = {self.shadow_port};")
        return "\n".join(lines) + "\n"


def _parse_sandbox(raw: Any, attr: str) -> List[Tuple[str, int]]:
    """Sandbox entries: bare names (default 1 MiB) or (name, bytes)."""
    if isinstance(raw, str):
        raw = [raw]
    if not isinstance(raw, list):
        raise JdlValidationError(f"{attr} must be a string or list")
    sandbox: List[Tuple[str, int]] = []
    for item in raw:
        if isinstance(item, str):
            sandbox.append((item, 1 << 20))  # default 1 MiB
        elif isinstance(item, (list, tuple)) and len(item) == 2:
            sandbox.append((str(item[0]), int(item[1])))
        else:
            raise JdlValidationError(f"bad {attr} entry {item!r}")
    return sandbox


def _coerce_expr(value: Any, attr: str) -> Optional[Expr]:
    """Accept an already-parsed Expr, a source string, a bool, or None."""
    if value is None:
        return None
    if isinstance(value, str):
        return parse_expression(value)
    if isinstance(value, bool):
        return parse_expression("true" if value else "false")
    if isinstance(value, Expr.__args__):  # type: ignore[attr-defined]
        return value
    raise JdlValidationError(f"{attr} must be an expression, got {value!r}")


def _parse_enum(enum_cls, value: Any, attr: str):
    if isinstance(value, enum_cls):
        return value
    if isinstance(value, str):
        try:
            return enum_cls(value.lower())
        except ValueError:
            pass
    raise JdlValidationError(
        f"{attr} must be one of {[e.value for e in enum_cls]}, got {value!r}")


def _parse_job_type(value: Any) -> Tuple[JobCategory, JobFlavor]:
    """JobType may be a single string or a list like {"interactive","mpich-g2"}."""
    parts: List[str]
    if isinstance(value, str):
        parts = [value]
    elif isinstance(value, list):
        parts = [str(v) for v in value]
    else:
        raise JdlValidationError(f"JobType must be a string or list, got {value!r}")

    category = JobCategory.BATCH
    flavor = JobFlavor.SEQUENTIAL
    for part in parts:
        lowered = part.lower()
        if lowered in ("batch", "normal"):
            category = JobCategory.BATCH
        elif lowered == "interactive":
            category = JobCategory.INTERACTIVE
        elif lowered == "sequential":
            flavor = JobFlavor.SEQUENTIAL
        elif lowered in ("mpich-p4", "mpich_p4", "mpichp4", "mpich"):
            flavor = JobFlavor.MPICH_P4
        elif lowered in ("mpich-g2", "mpich_g2", "mpichg2"):
            flavor = JobFlavor.MPICH_G2
        else:
            raise JdlValidationError(f"unknown JobType component {part!r}")
    return category, flavor
