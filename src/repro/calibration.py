"""Calibration constants for the CLUSTER 2006 reproduction.

Every tunable number in the simulation lives here, in one place, each
annotated with the paper table/figure it anchors.  The defaults are chosen
so the simulated pipeline lands inside the paper's measured ranges; the
experiment harness asserts *shape* (orderings, ratios, crossovers), never
exact values.

Units: seconds for time, bytes for sizes, bytes/second for bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class NetworkProfile:
    """Latency/bandwidth of one scenario (paper §6, two testbeds)."""

    #: One-way latency between submission and execution machine.
    latency: float
    #: Effective bandwidth of the path.
    bandwidth: float
    #: Coefficient of variation applied to each transfer.
    jitter: float

    @property
    def rtt(self) -> float:
        return 2.0 * self.latency


#: Campus grid: 100 Mbps university LAN (paper §6, first scenario).
CAMPUS = NetworkProfile(latency=0.0004, bandwidth=100e6 / 8, jitter=0.06)

#: Wide-area grid: UAB (Barcelona) <-> IFCA (Santander) over RedIRIS.
#: Effective path bandwidth is far below the nominal backbone rate.
WAN = NetworkProfile(latency=0.007, bandwidth=20e6 / 8, jitter=0.18)


@dataclass(frozen=True)
class MiddlewareCosts:
    """Stage costs of the submission pipeline (anchors Table I).

    Table I decomposes response time into resource discovery, resource
    selection and submission.  The submission column is the sum of the
    Globus/GRAM traversal, the local queue dispatch, CrossBroker's
    two-phase commit + input staging, and job start, so the constants
    below are chosen to land the four method rows at roughly
    glogin 16.4/20.1 s, idle 17.2 s, shared-VM 6.8 s, job+agent 29.3 s.
    """

    #: GSI mutual authentication handshake (two round trips + crypto).
    gsi_handshake: float = 1.4
    #: GRAM gatekeeper traversal: jobmanager spawn, RSL parse, fork.
    gram_overhead: float = 7.0
    #: Local batch system dispatch latency on an idle cluster (PBS
    #: scheduling cycle + prologue + fork of the user job).
    local_queue_dispatch: float = 5.0
    #: CrossBroker's two-phase commit protocol at submission.
    two_phase_commit: float = 1.2
    #: Automatic staging of job input files (sandbox transfer setup).
    input_staging: float = 2.2
    #: Fork+exec of the user job on the worker node.
    job_start: float = 0.8
    #: Query to the MDS information index (located in Germany; §6.1: ~0.5 s).
    mds_query: float = 0.5
    #: Per-site refresh during resource selection (§6.1: ~3 s for 20 sites;
    #: queries overlap, so the aggregate grows sub-linearly).
    site_refresh: float = 0.55
    #: Number of concurrent site-refresh queries in flight.
    site_refresh_parallelism: int = 4
    #: Broker internal matchmaking cost per candidate site.
    matchmaking_per_site: float = 0.004
    #: Direct broker->glide-in agent dispatch (authenticated channel to
    #: the agent + delegation + sandbox push; bypasses Globus+queue).
    agent_dispatch_rpc: float = 3.3
    #: Agent-side setup of the interactive VM slot for an incoming job.
    agent_slot_setup: float = 2.3
    #: GRAM control-protocol chatter: message exchanges per submission,
    #: each paying a path round trip (why WAN submissions cost more).
    control_messages: int = 450
    #: Glide-in agent binary transfer + boot on the worker node (job+agent row).
    glidein_transfer: float = 7.0
    glidein_boot: float = 4.5
    #: Console shadow start + agent connect-back before first output.
    shadow_setup: float = 1.0


@dataclass(frozen=True)
class GloginCosts:
    """Baseline: Glogin interactive shell (Table I row 1, Fig. 6-7)."""

    #: GSI handshake (Glogin relies on Globus security).
    gsi_handshake: float = 1.4
    #: Gatekeeper traversal to start the glogin server side.
    gram_overhead: float = 7.0
    #: Setup of the glogin bidirectional channel (port probing etc.).
    channel_setup: float = 7.8
    #: Extra channel setup cost on a WAN path (privileged port relay).
    wan_channel_penalty: float = 0.9
    #: Channel-bootstrap message exchanges, each paying a path round trip.
    control_messages: int = 450
    #: Per-operation overhead of the Globus-IO framed channel.
    per_op: float = 0.0013
    #: Additional per-byte cost of Globus-IO framing/encryption, which makes
    #: Glogin degrade on large (10 KB) transfers — Fig. 6/7.
    per_byte: float = 7.0e-7
    #: Small fixed chunk size of the glogin relay (forces several round
    #: trips for 10 KB payloads).
    chunk: int = 4096


@dataclass(frozen=True)
class SshCosts:
    """Baseline: plain ssh session (Fig. 6-7; not grid-deployable)."""

    #: Interactive session establishment (key exchange + auth).
    session_setup: float = 1.1
    #: Per-operation (per 4 KB channel window) syscall+crypto overhead —
    #: 2006-era 3DES/AES CBC on Pentium-class hardware.
    per_op: float = 0.0012
    #: Per-byte encryption cost.
    per_byte: float = 1.6e-7
    #: ssh channel window/internal buffer (small; the paper credits the
    #: agents' *larger* buffers for beating ssh at 10 KB).
    chunk: int = 4096


@dataclass(frozen=True)
class StreamingCosts:
    """Our interposition agents (Fig. 6-7, §4)."""

    #: Per-operation cost of the trapped call + RPC framing (fast mode).
    per_op_fast: float = 0.0004
    #: Per-byte cost of the agent protocol (lightweight framing).
    per_byte: float = 1.0e-7
    #: Internal buffer of CA/CS.  Larger than ssh's chunk: a 10 KB write is
    #: shipped as a single message, which is why reliable mode overtakes ssh
    #: at 10 KB in Fig. 6.
    buffer_size: int = 65536
    #: Disk write+read cost per buffered operation in reliable mode
    #: (page-cache-backed sequential log append/replay).
    disk_per_op: float = 0.0008
    #: Disk cost per byte in reliable mode (sequential log write).
    disk_per_byte: float = 1.5e-8
    #: Scale of the half-normal per-send burst delay of the unbuffered
    #: fast path, as a fraction of one-way path latency — negligible on a
    #: LAN, visible on the WAN (paper: "our method exhibits a higher
    #: variance").
    fast_wan_jitter: float = 0.25
    #: Reliable-mode reconnect interval and retry budget (configurable in
    #: the paper; defaults mirror the prose).
    retry_interval: float = 5.0
    max_retries: int = 12
    #: Output flush timeout (the "timeout" flush trigger of §4).
    flush_timeout: float = 0.25


@dataclass(frozen=True)
class LoopAppProfile:
    """The Fig. 8 workload: 1000 x (I/O op + CPU burst)."""

    iterations: int = 1000
    #: CPU burst per iteration in exclusive mode (paper: mean 0.921 s).
    cpu_burst: float = 0.921
    #: I/O operation time in exclusive mode (paper: mean 6.06 ms).
    io_time: float = 0.00606
    #: Relative std-dev of each phase (paper: std 0.001 s / 6.9e-5 s).
    cpu_rel_std: float = 0.0011
    io_rel_std: float = 0.0114


@dataclass(frozen=True)
class SchedulerProfile:
    """Worker-node CPU scheduler used by the multiprogramming agent (Fig. 8).

    The agent enforces PerformanceLoss with priority adjustment; the OS
    round-robin quantum means the batch job only ever receives whole
    quanta, so the *measured* loss sits slightly below the nominal value
    (paper: PL=10 -> 8 %, PL=25 -> 22 %).
    """

    #: OS scheduler quantum.  0.030 lands the Fig. 8 CPU ratios:
    #: PL=25 -> floor(0.921*0.25/0.03)=7 quanta -> 1.131 s vs paper 1.132 s.
    quantum: float = 0.030
    #: Context-switch cost charged whenever the batch job gets a quantum.
    context_switch: float = 0.0002
    #: Worst-case non-preemptible section the interactive job may wait out
    #: when an I/O completion arrives while the batch job holds the CPU.
    #: Expected I/O penalty = PL/100 x this (Fig. 8 right: +5 %/+10 %).
    preempt_latency: float = 0.0023


@dataclass(frozen=True)
class FairShareConfig:
    """Fair-share priority accounting (§5.1, eq. 1)."""

    #: Half-life of the priority decay, seconds.
    half_life: float = 3600.0
    #: Update period delta-t.
    update_interval: float = 60.0
    #: Initial priority value for new users (lower is better).
    initial_priority: float = 0.0
    #: Rejection threshold: when resources are scarce, users whose priority
    #: exceeds the best competing user's by this factor are rejected.
    scarcity_margin: float = 1.0
    #: Use the paper's literal interactive application factor
    #: ``a_f = 2 * PL/100`` instead of the corrected ``2 - PL/100``
    #: (see DESIGN.md, Known deviations).
    af_interactive_literal: bool = False


@dataclass(frozen=True)
class Calibration:
    """Bundle of every calibrated profile, passed around explicitly."""

    middleware: MiddlewareCosts = field(default_factory=MiddlewareCosts)
    glogin: GloginCosts = field(default_factory=GloginCosts)
    ssh: SshCosts = field(default_factory=SshCosts)
    streaming: StreamingCosts = field(default_factory=StreamingCosts)
    loop_app: LoopAppProfile = field(default_factory=LoopAppProfile)
    scheduler: SchedulerProfile = field(default_factory=SchedulerProfile)
    fairshare: FairShareConfig = field(default_factory=FairShareConfig)
    profiles: Dict[str, NetworkProfile] = field(
        default_factory=lambda: {"campus": CAMPUS, "wan": WAN}
    )

    def with_streaming(self, **kwargs) -> "Calibration":
        return replace(self, streaming=replace(self.streaming, **kwargs))

    def with_scheduler(self, **kwargs) -> "Calibration":
        return replace(self, scheduler=replace(self.scheduler, **kwargs))

    def with_fairshare(self, **kwargs) -> "Calibration":
        return replace(self, fairshare=replace(self.fairshare, **kwargs))

    def with_middleware(self, **kwargs) -> "Calibration":
        return replace(self, middleware=replace(self.middleware, **kwargs))


DEFAULT_CALIBRATION = Calibration()
