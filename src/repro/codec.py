"""Canonical config (de)serialisation, shared by every layer.

:class:`ConfigCodec` started life in :mod:`repro.experiments.common`,
but broker configs (:class:`repro.core.BrokerConfig` and its per-mode
subclasses) need the same round-trip contract — and ``repro.core`` must
not import the experiment harness.  The mixin therefore lives here, in
a leaf module with no intra-package dependencies; the experiment layer
re-exports it unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict


def _jsonify(value: Any) -> Any:
    """Config field -> canonical JSON-able form (tuples become lists)."""
    if isinstance(value, tuple):
        return [_jsonify(v) for v in value]
    if isinstance(value, (list,)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return value


def _coerce(value: Any) -> Any:
    """Canonical JSON form -> config field (lists become tuples)."""
    if isinstance(value, list):
        return tuple(_coerce(v) for v in value)
    return value


class ConfigCodec:
    """Canonical (de)serialisation mixin for config dataclasses.

    ``to_key_dict()`` returns the config's *semantic identity*: every
    dataclass field except the non-key ones (the calibration bundle,
    which the runner fingerprints separately so that cache keys react to
    calibration edits without embedding a dataclass tree in every config
    dict).  ``from_dict()`` round-trips that dict back into a config —
    the pair is what makes the runner's cache keys and ``--resume``
    stable across processes and interpreter invocations.
    """

    #: Fields excluded from the key dict (handled out-of-band).
    NON_KEY_FIELDS = ("calibration",)

    def to_key_dict(self) -> Dict[str, Any]:
        assert dataclasses.is_dataclass(self), "ConfigCodec needs a dataclass"
        return {f.name: _jsonify(getattr(self, f.name))
                for f in dataclasses.fields(self)
                if f.name not in self.NON_KEY_FIELDS}

    @classmethod
    def from_dict(cls, data: Dict[str, Any], calibration: Any = None):
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - field_names)
        if unknown:
            raise ValueError(f"{cls.__name__}.from_dict: unknown fields "
                             f"{unknown}")
        kwargs = {name: _coerce(value) for name, value in data.items()
                  if name not in cls.NON_KEY_FIELDS}
        if calibration is not None and "calibration" in field_names:
            kwargs["calibration"] = calibration
        return cls(**kwargs)


__all__ = ["ConfigCodec"]
