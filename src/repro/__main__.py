"""``python -m repro`` — alias for the experiment CLI.

Dispatches straight to :mod:`repro.experiments.cli`, so
``python -m repro run table1 --quick --parallel 4`` and
``repro run ...`` (console script) behave identically.
"""

from __future__ import annotations

import sys

from .experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
