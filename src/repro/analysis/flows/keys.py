"""Cache-key completeness: what ``run_cell`` reads, the key must hash.

The PR-8 staleness class: a cell function starts reading a config
field that ``to_key_dict()`` excludes (or that the dataclass never
declared), two configs differing only in that field collide on the same
cache key, and the second run silently serves the first run's payload.
PR 8 papered over one instance with a manual ``cache_salt`` bump; this
rule makes the whole class a lint failure.

For every ``register(ExperimentSpec(...))`` site in the graph the rule
resolves the config class and the ``run_cell`` entry, then taints the
config parameter and follows it through the call graph (positional and
keyword argument flow, memoised).  Each attribute read through a
tainted name is checked against the config class surface:

* reads of fields listed in ``NON_KEY_FIELDS`` are findings — the cell
  depends on state the key does not hash — except fields the runner
  fingerprints out-of-band (``calibration``, hashed separately by
  :mod:`repro.runner.cache`);
* reads of attributes that are neither dataclass fields, methods,
  class attributes, nor inherited (in-universe MRO) members are
  findings — the value cannot be in the key because the config never
  declared it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..engine import Finding
from .base import FlowRule
from .graph import (FunctionSummary, ModuleSummary, ProgramGraph,
                    SpecReg)

__all__ = ["CacheKeyRule", "config_surface", "taint_reads"]

#: NON_KEY fields the runner hashes out-of-band (see runner/cache.py:
#: the calibration bundle is fingerprinted separately so cache keys
#: react to calibration edits without embedding the dataclass tree).
FINGERPRINTED_FIELDS = frozenset({"calibration"})

#: Attribute names that exist on every object / dataclass.
_UNIVERSAL_ATTRS = frozenset({
    "__class__", "__dict__", "__doc__", "__module__", "__name__",
})

_MAX_TAINT_DEPTH = 10


def _literal_tuple(expr: str) -> Optional[Tuple[str, ...]]:
    """Parse a class-attr source expression as a tuple of strings."""
    try:
        value = ast.literal_eval(expr)
    except (ValueError, SyntaxError):
        return None
    if isinstance(value, (tuple, list)) and all(
            isinstance(v, str) for v in value):
        return tuple(value)
    return None


def config_surface(graph: ProgramGraph, module: str, class_name: str,
                   ) -> Optional[Tuple[Set[str], Set[str], Set[str]]]:
    """``(fields, non_key, other_attrs)`` of a config class, MRO-wide.

    ``other_attrs`` covers methods, properties and plain class attrs —
    reads of those are not key-relevant.  Returns None when the class
    is not in the universe (externally defined config: nothing to
    prove).
    """
    chain = graph.mro(module, class_name)
    if not chain:
        return None
    fields: Set[str] = set()
    non_key: Set[str] = set()
    other: Set[str] = set(_UNIVERSAL_ATTRS)
    for summary, klass in chain:
        fields |= set(klass.fields)
        other |= set(klass.methods)
        other |= set(klass.class_attrs)
        declared = klass.class_attrs.get("NON_KEY_FIELDS")
        if declared is not None:
            parsed = _literal_tuple(declared)
            if parsed is not None:
                non_key |= set(parsed)
    return fields, non_key, other


def taint_reads(graph: ProgramGraph, module: str, fn: FunctionSummary,
                param: str) -> List[Tuple[str, str, str, int]]:
    """All attribute reads through ``param``, across the call graph.

    Returns ``(module, function, attr, line)`` tuples, deduplicated and
    sorted.  Propagation follows the tainted name when it is passed as
    a plain positional or keyword argument to a resolvable callee.
    """
    out: Set[Tuple[str, str, str, int]] = set()
    memo: Set[Tuple[str, str, str]] = set()
    stack: List[Tuple[str, FunctionSummary, str, int]] = [
        (module, fn, param, 0)]
    while stack:
        mod, func, name, depth = stack.pop()
        key = (mod, func.name, name)
        if key in memo or depth > _MAX_TAINT_DEPTH:
            continue
        memo.add(key)
        for base, attr, line in func.attr_reads:
            if base == name:
                out.add((mod, func.name, attr, line))
        for call in func.calls:
            taint_positions = [i for i, arg in enumerate(call.args)
                               if arg == name]
            taint_kwargs = [kw for kw, value in call.kwargs
                            if value == name]
            if not taint_positions and not taint_kwargs:
                continue
            resolved = graph.find_function(mod, call.callee,
                                           func.local_aliases)
            if resolved is None:
                continue
            callee_summary, callee = resolved
            params = callee.params
            # Methods: drop the self/cls slot for positional mapping.
            if "." in callee.name and params and \
                    params[0] in ("self", "cls"):
                params = params[1:]
            for pos in taint_positions:
                if pos < len(params):
                    stack.append((callee_summary.module, callee,
                                  params[pos], depth + 1))
            for kw in taint_kwargs:
                if kw in params or kw in callee.kwonly:
                    stack.append((callee_summary.module, callee, kw,
                                  depth + 1))
    return sorted(out)


def _spec_entry(graph: ProgramGraph, summary: ModuleSummary,
                reg: SpecReg, role: str,
                ) -> Optional[Tuple[ModuleSummary, FunctionSummary]]:
    name = reg.kwarg(role)
    if not name:
        return None
    return graph.find_function(summary.module, name)


class CacheKeyRule(FlowRule):
    """Every config field ``run_cell`` reads must be in the cache key.

    The cell cache key hashes ``config.to_key_dict()`` — all dataclass
    fields minus ``NON_KEY_FIELDS`` (plus a separate calibration
    fingerprint).  A field the cell reads but the key omits makes two
    distinct configs collide on one cache entry.
    """

    id = "flow-cache-key"
    category = "cache"

    def check(self, graph: ProgramGraph) -> Iterable[Finding]:
        for summary in graph.summaries():
            for reg in summary.spec_regs:
                yield from self._check_spec(graph, summary, reg)

    def _check_spec(self, graph: ProgramGraph, summary: ModuleSummary,
                    reg: SpecReg) -> Iterable[Finding]:
        exp = reg.kwarg("experiment_id") or "?"
        config_name = (reg.kwarg("config_factory")
                       or reg.kwarg("quick_config_factory"))
        run_cell = _spec_entry(graph, summary, reg, "run_cell")
        if not config_name or run_cell is None:
            return
        surface = config_surface(graph, summary.module, config_name)
        if surface is None:
            return
        fields, non_key, other = surface
        entry_summary, entry_fn = run_cell
        if not entry_fn.params:
            return
        reads = taint_reads(graph, entry_summary.module, entry_fn,
                            entry_fn.params[0])
        reported: Set[Tuple[str, str]] = set()
        for mod, func, attr, line in reads:
            if (func, attr) in reported:
                continue
            read_summary = graph.module(mod)
            if read_summary is None:
                continue
            if attr in non_key and attr not in FINGERPRINTED_FIELDS:
                reported.add((func, attr))
                yield self.finding(
                    read_summary, line,
                    f"cache-key completeness ({exp}): {func} reads "
                    f"config.{attr}, which NON_KEY_FIELDS excludes "
                    "from to_key_dict(); distinct configs will collide "
                    "on one cache entry")
            elif attr not in fields and attr not in other and \
                    not attr.startswith("__"):
                reported.add((func, attr))
                yield self.finding(
                    read_summary, line,
                    f"cache-key completeness ({exp}): {func} reads "
                    f"config.{attr}, which is not a declared field of "
                    f"{config_name}; the cache key cannot cover it")
