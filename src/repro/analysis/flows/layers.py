"""Layer-DAG policy as data, plus the import-topology flow rules.

One :class:`LayerMap` declaration (:data:`REPRO_LAYERS`) replaces the
three hand-written layering rule classes that accreted over PR 4/7/8
(``compiled-lane-purity``, ``obs-direct-import``, ``broker-factory``).
Policy changes are now edits to this table, not new AST visitors.

Ranks follow the *actual* dependency DAG of the tree (verified by the
``flow-layer-dag`` gate itself), refining the coarse sketch in the
issue: the substrate kernel at the bottom; leaf utility packages next;
the grid fabric; scheduling policy; the broker core and workload
synthesis; the runner; experiments and the CLI on top.  ``repro.obs``
is deliberately *unranked* — it may be imported from anywhere (the
zero-cost hook contract) but must not import the packages it observes,
which is the separate ``flow-obs-isolation`` rule.

Only **eager** imports (module level, outside ``TYPE_CHECKING``)
constitute DAG edges.  Function-level imports are the sanctioned
escape hatch for upward calls (e.g. ``experiments/cli.py`` lazily
importing the analysis CLI) and stay exempt, consistent with the
compiled-lane philosophy: what matters is what a bare ``import
repro.sim`` drags in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..engine import Finding
from .base import FlowRule
from .graph import ModuleSummary, ProgramGraph

__all__ = [
    "REPRO_LAYERS",
    "LayerMap",
    "LayerDagRule",
    "ObsIsolationRule",
    "SimPurityRule",
    "BrokerFactoryRule",
]


@dataclass(frozen=True)
class LayerMap:
    """Declarative layering policy for one project namespace.

    ``ranks`` maps package prefixes (relative to ``namespace``) to an
    integer layer; an eager import from rank *r* may only reach ranks
    ``<= r``.  ``isolated`` packages are importable from anywhere but
    may not eagerly import any ``observes`` package.  ``exempt``
    prefixes opt out of ranking entirely (the analysis layer itself,
    package dunder roots).  ``purity`` pins a package to an import
    allowlist of external top-level modules (the compiled lane).
    ``factory_only`` restricts direct construction of the named classes
    to below the listed packages, steering drivers through the factory.
    """

    namespace: str
    ranks: Mapping[str, int]
    isolated: Tuple[str, ...] = ()
    observes: Tuple[str, ...] = ()
    exempt: Tuple[str, ...] = ()
    purity: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    factory_only: Mapping[str, Tuple[str, ...]] = field(
        default_factory=dict)

    def _subpackage(self, module: str) -> Optional[str]:
        prefix = self.namespace + "."
        if module == self.namespace:
            return ""
        if not module.startswith(prefix):
            return None
        return module[len(prefix):]

    def rank_of(self, module: str) -> Optional[int]:
        """Layer rank of a dotted module, or None when unranked."""
        sub = self._subpackage(module)
        if sub is None or sub == "":
            return None
        for prefix in self.exempt:
            if sub == prefix or sub.startswith(prefix + "."):
                return None
        for prefix in self.isolated:
            if sub == prefix or sub.startswith(prefix + "."):
                return None
        best: Optional[int] = None
        best_len = -1
        for prefix, rank in self.ranks.items():
            if sub == prefix or sub.startswith(prefix + "."):
                if len(prefix) > best_len:
                    best, best_len = rank, len(prefix)
        return best

    def is_isolated(self, module: str) -> bool:
        sub = self._subpackage(module)
        if not sub:
            return False
        return any(sub == p or sub.startswith(p + ".")
                   for p in self.isolated)

    def is_observed(self, module: str) -> bool:
        sub = self._subpackage(module)
        if not sub:
            return False
        return any(sub == p or sub.startswith(p + ".")
                   for p in self.observes)

    def purity_allowlist(self, module: str) -> Optional[Tuple[str, ...]]:
        sub = self._subpackage(module)
        if not sub:
            return None
        for prefix, allow in self.purity.items():
            if sub == prefix or sub.startswith(prefix + "."):
                return allow
        return None

    def in_package(self, module: str, prefix: str) -> bool:
        sub = self._subpackage(module)
        if sub is None:
            return False
        return sub == prefix or sub.startswith(prefix + ".")


#: The repro tree's layering contract.  Edit this table — not a rule
#: class — to change policy.  Ranks: lower = deeper.  A module may
#: eagerly import only modules of rank <= its own.
REPRO_LAYERS = LayerMap(
    namespace="repro",
    ranks={
        # 0 — the substrate kernel (see also its purity allowlist).
        "sim": 0,
        # 1 — leaf utilities: config codec, calibration, JDL, net model,
        #     metrics aggregation.
        "codec": 1,
        "calibration": 1,
        "jdl": 1,
        "net": 1,
        "metrics": 1,
        # 2 — the grid fabric and result streaming.
        "grid": 2,
        "streaming": 2,
        "interposition": 2,
        # 3 — scheduling policy stacks.
        "multiprog": 3,
        "baselines": 3,
        # 4 — broker core and workload synthesis.
        "core": 4,
        "workloads": 4,
        # 5 — the runner (cache/engine/conveyor) and scenario facade.
        "runner": 5,
        "scenario": 5,
        # 6 — the top: experiments and the CLI.
        "experiments": 6,
        "cli": 6,
    },
    isolated=("obs",),
    observes=("sim", "core", "grid", "streaming", "multiprog", "net"),
    exempt=("analysis",),
    purity={
        # The compiled-lane contract from PR 8: repro.sim must stay
        # self-contained so the C lane / future compiled lanes see no
        # foreign imports at module level.
        "sim": ("__future__", "collections", "dataclasses", "enum",
                "functools", "heapq", "itertools", "math", "os",
                "types", "typing", "warnings", "weakref", "numpy"),
    },
    factory_only={
        # Driver layers must build brokers via core.protocol.make_broker
        # so broker_mode stays data, not code.
        "CrossBroker": ("experiments", "examples"),
        "PullBroker": ("experiments", "examples"),
        "DataAwareBroker": ("experiments", "examples"),
        # Drivers reach steering through the controller that
        # Scenario.build binds (env.control.world), never by wrapping a
        # handle themselves — the adapter is the control bridge's world
        # half, not a driver convenience.
        "SteeringAdapter": ("experiments", "examples"),
    },
)


def _eager_targets(summary: ModuleSummary,
                   namespace: str) -> Iterable[Tuple[str, int]]:
    """Distinct eager in-namespace import targets with first line."""
    seen: Dict[str, int] = {}
    for edge in summary.imports:
        if edge.lazy:
            continue
        target = edge.target
        if not (target == namespace
                or target.startswith(namespace + ".")):
            continue
        if target not in seen:
            seen[target] = edge.line
    return seen.items()


def _resolve_edge_target(graph: ProgramGraph, target: str) -> str:
    """Map an import target onto a module in the universe.

    ``from repro.core import broker`` records target ``repro.core`` with
    a symbol; the module-level edge we care about is the longest prefix
    of ``target`` present in the graph (falling back to ``target``).
    """
    parts = target.split(".")
    for i in range(len(parts), 0, -1):
        candidate = ".".join(parts[:i])
        if graph.has_module(candidate):
            return candidate
    return target


class LayerDagRule(FlowRule):
    """Eager imports must respect the declared layer DAG.

    A ranked module may eagerly import only modules of equal or lower
    rank.  Edges are followed through *unranked* intermediates (an
    ``__init__`` facade, a helper module) so the finding reports the
    full offending chain — ``repro.grid.site -> repro.grid.util ->
    repro.runner.engine`` — not just the first hop.  Once a chain
    reaches another *ranked* module, that module's own imports are its
    own obligation and traversal stops.
    """

    id = "flow-layer-dag"
    category = "layering"

    def __init__(self, layers: LayerMap) -> None:
        self.layers = layers

    def check(self, graph: ProgramGraph) -> Iterable[Finding]:
        for summary in graph.summaries():
            rank = self.layers.rank_of(summary.module)
            if rank is None:
                continue
            yield from self._check_module(graph, summary, rank)

    def _check_module(self, graph: ProgramGraph, summary: ModuleSummary,
                      rank: int) -> Iterable[Finding]:
        # BFS from each eager edge, traversing only unranked modules in
        # the universe; report the shortest chain per offender.
        reported: set = set()
        for target, line in sorted(_eager_targets(
                summary, self.layers.namespace),
                key=lambda item: (item[1], item[0])):
            start = _resolve_edge_target(graph, target)
            queue: List[List[str]] = [[start]]
            visited = {start}
            while queue:
                chain = queue.pop(0)
                module = chain[-1]
                target_rank = self.layers.rank_of(module)
                if target_rank is not None:
                    if target_rank > rank and module not in reported:
                        reported.add(module)
                        arrow = " -> ".join([summary.module] + chain)
                        yield self.finding(
                            summary, line,
                            f"layer violation: {summary.module} "
                            f"(layer {rank}) eagerly reaches {module} "
                            f"(layer {target_rank}) via {arrow}")
                    continue  # ranked: its imports are its own problem
                next_summary = graph.module(module)
                if next_summary is None or len(chain) > 8:
                    continue
                for nxt, _ in sorted(_eager_targets(
                        next_summary, self.layers.namespace)):
                    resolved = _resolve_edge_target(graph, nxt)
                    if resolved not in visited:
                        visited.add(resolved)
                        queue.append(chain + [resolved])


class ObsIsolationRule(FlowRule):
    """Observed layers must not eagerly import the observer.

    ``repro.obs`` hooks into the kernel through zero-cost attributes;
    an eager import in the other direction would make observability a
    load-bearing dependency of the thing it observes.  (Replaces the
    per-file ``obs-direct-import`` rule; function-level imports — e.g.
    the runner engine attaching telemetry — remain sanctioned.)
    """

    id = "flow-obs-isolation"
    category = "layering"

    def __init__(self, layers: LayerMap) -> None:
        self.layers = layers

    def check(self, graph: ProgramGraph) -> Iterable[Finding]:
        iso_prefixes = tuple(
            f"{self.layers.namespace}.{p}" for p in self.layers.isolated)
        for summary in graph.summaries():
            if not self.layers.is_observed(summary.module):
                continue
            for edge in summary.imports:
                if edge.lazy:
                    continue
                if any(edge.target == p or edge.target.startswith(p + ".")
                       for p in iso_prefixes):
                    yield self.finding(
                        summary, edge.line,
                        f"observed module {summary.module} eagerly "
                        f"imports {edge.target}; observability must "
                        "attach via hooks, not imports (use a "
                        "function-level import if unavoidable)")


class SimPurityRule(FlowRule):
    """The kernel package imports only its substrate allowlist.

    The compiled lane (PR 8) requires ``repro.sim`` to be loadable with
    nothing but the standard substrate present; any new module-level
    dependency silently breaks that contract.  (Replaces the per-file
    ``compiled-lane-purity`` rule.)  Intra-package relative imports and
    the package's own private extension modules stay allowed.
    """

    id = "flow-sim-purity"
    category = "layering"

    def __init__(self, layers: LayerMap) -> None:
        self.layers = layers

    def check(self, graph: ProgramGraph) -> Iterable[Finding]:
        ns = self.layers.namespace
        for summary in graph.summaries():
            allow = self.layers.purity_allowlist(summary.module)
            if allow is None:
                continue
            pkg_prefix = summary.module.split(".")[:2]  # repro.sim
            own = ".".join(pkg_prefix)
            for edge in summary.imports:
                if edge.lazy:
                    continue
                top = edge.target.split(".")[0]
                if edge.target == own or edge.target.startswith(
                        own + "."):
                    continue
                if top == ns:
                    yield self.finding(
                        summary, edge.line,
                        f"kernel purity: {summary.module} imports "
                        f"{edge.target}; the compiled lane requires "
                        f"{own} to be self-contained")
                elif top not in allow:
                    yield self.finding(
                        summary, edge.line,
                        f"kernel purity: {summary.module} imports "
                        f"{edge.target!r} outside the substrate "
                        f"allowlist for {own}")


class BrokerFactoryRule(FlowRule):
    """Driver layers construct brokers via ``make_broker`` only.

    Direct ``CrossBroker(...)``-style construction in experiments or
    examples hard-codes a scheduling architecture that is supposed to
    be selected by ``Scenario(broker_mode=...)``.  (Replaces the
    per-file ``broker-factory`` rule.)
    """

    id = "flow-broker-factory"
    category = "layering"

    def __init__(self, layers: LayerMap) -> None:
        self.layers = layers

    def check(self, graph: ProgramGraph) -> Iterable[Finding]:
        restricted = self.layers.factory_only
        if not restricted:
            return
        for summary in graph.summaries():
            packages = {
                prefix
                for prefixes in restricted.values()
                for prefix in prefixes
                if self.layers.in_package(summary.module, prefix)
            }
            if not packages:
                continue
            for fn in summary.all_functions():
                for call in fn.calls:
                    leaf = call.callee.split(".")[-1]
                    if leaf in restricted:
                        yield self.finding(
                            summary, call.line,
                            f"direct {leaf}(...) construction in "
                            f"{summary.module}; use make_broker() / "
                            "Scenario(broker_mode=...) so the "
                            "architecture stays configuration")
