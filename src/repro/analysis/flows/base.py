"""FlowRule base class, shared by every flow rule module.

Kept separate from :mod:`.engine` so rule modules can subclass without
importing the registry that in turn imports them.
"""

from __future__ import annotations

from typing import Iterable

from ..engine import Finding
from .graph import ModuleSummary, ProgramGraph

__all__ = ["FlowRule"]


class FlowRule:
    """A whole-program rule: sees the linked graph, yields findings.

    Mirrors the per-file :class:`~repro.analysis.engine.Rule` contract
    (stable ``id``, ``category``, deterministic output) but ``check``
    receives the :class:`~.graph.ProgramGraph` instead of one AST.
    Suppression pragmas are honoured by the flow engine after the rule
    runs, so rules just yield.
    """

    id: str = ""
    category: str = "flows"

    def check(self, graph: ProgramGraph) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, summary: ModuleSummary, line: int,
                message: str, col: int = 0) -> Finding:
        return Finding(rule=self.id, category=self.category,
                       path=summary.relpath, line=line, col=col,
                       message=message, snippet="")

    def doc_summary(self) -> str:
        doc = (self.__doc__ or "").strip().splitlines()
        return doc[0].rstrip(".") if doc else ""
