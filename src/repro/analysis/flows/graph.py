"""Whole-program import graph + per-module symbol/call summaries.

One :class:`ModuleSummary` per file, produced by a single AST walk and
serialisable to JSON, so the whole pass is **incremental**: summaries
are cached keyed by the file's blake2b digest and a warm
``repro lint --flows`` run parses only the files that changed since the
last one (usually none — the rules then run over cached summaries).

The summary records exactly what the flow rules consume:

* **imports** — every ``import``/``from`` edge, resolved to an absolute
  dotted target (relative imports are resolved against the module's
  package at parse time), tagged ``lazy`` when it sits inside a
  function/lambda or a ``TYPE_CHECKING`` block;
* **aliases** — local name -> dotted target, the per-module symbol
  table that call/attribute resolution walks (re-export chains are
  followed across modules, bounded);
* **functions / classes** — signatures (parameter order + default
  reprs), call sites with plain-name argument mapping, attribute reads
  ``(base, attr, line)``, and **writes** to names that are not local to
  the function (the worker-purity rule's raw material);
* **spec registrations** — ``register(ExperimentSpec(...))`` call
  sites with their keyword expressions (the cache-key and drift rules'
  anchor);
* **worker entries** — the first argument of ``<pool>.submit(f, ...)``
  and ``run_conveyor(f, ...)`` calls;
* **suppressions** — the file's parsed ``# simlint: disable`` table, so
  flow findings honour the same pragma contract as per-file rules even
  when the summary came from the cache.

Module names derive from the package root (the topmost ancestor chain
of ``__init__.py`` files), so ``src/repro/core/broker.py`` summarises
as ``repro.core.broker`` and a fixture tree rooted anywhere does the
same — the layer map keys on dotted names, not filesystem location.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, List, Optional, Sequence, Set,
                    Tuple)

from ..engine import _parse_suppressions, _Suppressions

__all__ = [
    "CallSite",
    "ClassSummary",
    "FLOWS_FORMAT",
    "FlowStats",
    "FunctionSummary",
    "ImportEdge",
    "ModuleSummary",
    "ProgramGraph",
    "SpecReg",
    "WriteSite",
    "build_graph",
    "module_name_for",
    "summarize_source",
]

#: Bump when the summary schema changes: cached entries then miss.
FLOWS_FORMAT = 1

#: Alias chains (re-exports) are followed at most this many hops.
_MAX_ALIAS_HOPS = 6


# ---------------------------------------------------------------------------
# summary dataclasses (all JSON round-trippable)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ImportEdge:
    """One import statement binding, resolved to an absolute target."""

    target: str          #: dotted module as written/resolved ("repro.net")
    symbol: str          #: bound name for ``from X import s`` ("" = module)
    line: int
    lazy: bool           #: inside a function/lambda or TYPE_CHECKING block

    def to_dict(self) -> Dict[str, Any]:
        return {"target": self.target, "symbol": self.symbol,
                "line": self.line, "lazy": self.lazy}


@dataclass(frozen=True)
class CallSite:
    """One call expression with its plain-name argument mapping."""

    callee: str                       #: dotted callee expr ("helper.run")
    line: int
    args: Tuple[Optional[str], ...]   #: positional args that are bare names
    kwargs: Tuple[Tuple[str, Optional[str]], ...]

    def to_dict(self) -> Dict[str, Any]:
        return {"callee": self.callee, "line": self.line,
                "args": list(self.args),
                "kwargs": [list(kv) for kv in self.kwargs]}


@dataclass(frozen=True)
class WriteSite:
    """A write through a name that is not local to the function."""

    base: str    #: the written-through name ("CACHE", "Environment")
    attr: str    #: attribute for setattr writes ("" for item/method writes)
    line: int
    kind: str    #: "rebind" (global X; X=) | "setattr" | "mutate"

    def to_dict(self) -> Dict[str, Any]:
        return {"base": self.base, "attr": self.attr,
                "line": self.line, "kind": self.kind}


@dataclass
class FunctionSummary:
    """Signature + body facts for one function or method."""

    name: str                       #: qualname in module ("Cls.meth")
    line: int
    params: List[str] = field(default_factory=list)
    defaults: Dict[str, str] = field(default_factory=dict)
    kwonly: List[str] = field(default_factory=list)
    has_vararg: bool = False
    has_kwarg: bool = False
    decorators: List[str] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    attr_reads: List[Tuple[str, str, int]] = field(default_factory=list)
    writes: List[WriteSite] = field(default_factory=list)
    #: function-level import bindings (lazy imports): name -> dotted.
    local_aliases: Dict[str, str] = field(default_factory=dict)

    @property
    def required_params(self) -> List[str]:
        return [p for p in self.params if p not in self.defaults]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "line": self.line, "params": self.params,
            "defaults": self.defaults, "kwonly": self.kwonly,
            "has_vararg": self.has_vararg, "has_kwarg": self.has_kwarg,
            "decorators": self.decorators,
            "calls": [c.to_dict() for c in self.calls],
            "attr_reads": [list(r) for r in self.attr_reads],
            "writes": [w.to_dict() for w in self.writes],
            "local_aliases": self.local_aliases,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            name=data["name"], line=data["line"], params=data["params"],
            defaults=data["defaults"], kwonly=data["kwonly"],
            has_vararg=data["has_vararg"], has_kwarg=data["has_kwarg"],
            decorators=data["decorators"],
            calls=[CallSite(c["callee"], c["line"], tuple(c["args"]),
                            tuple((k, v) for k, v in c["kwargs"]))
                   for c in data["calls"]],
            attr_reads=[(r[0], r[1], r[2]) for r in data["attr_reads"]],
            writes=[WriteSite(w["base"], w["attr"], w["line"], w["kind"])
                    for w in data["writes"]],
            local_aliases=data["local_aliases"],
        )


@dataclass
class ClassSummary:
    """One class: bases, methods, class attrs, annotated fields."""

    name: str
    line: int
    bases: List[str] = field(default_factory=list)
    decorators: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: simple class-level assignments, name -> source expression.
    class_attrs: Dict[str, str] = field(default_factory=dict)
    #: annotated assignments (dataclass fields), name -> annotation.
    fields: Dict[str, str] = field(default_factory=dict)

    @property
    def is_dataclass(self) -> bool:
        return any("dataclass" in d for d in self.decorators)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "line": self.line, "bases": self.bases,
            "decorators": self.decorators,
            "methods": {k: m.to_dict() for k, m in self.methods.items()},
            "class_attrs": self.class_attrs, "fields": self.fields,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassSummary":
        return cls(
            name=data["name"], line=data["line"], bases=data["bases"],
            decorators=data["decorators"],
            methods={k: FunctionSummary.from_dict(m)
                     for k, m in data["methods"].items()},
            class_attrs=data["class_attrs"], fields=data["fields"],
        )


@dataclass(frozen=True)
class SpecReg:
    """A ``register(ExperimentSpec(...))`` site (keyword -> name expr)."""

    line: int
    kwargs: Tuple[Tuple[str, str], ...]

    def kwarg(self, name: str) -> str:
        for key, value in self.kwargs:
            if key == name:
                return value
        return ""

    def to_dict(self) -> Dict[str, Any]:
        return {"line": self.line,
                "kwargs": [list(kv) for kv in self.kwargs]}


@dataclass
class ModuleSummary:
    """Everything the flow rules need to know about one file."""

    module: str
    path: str          #: absolute path
    relpath: str       #: path as reported in findings
    digest: str
    imports: List[ImportEdge] = field(default_factory=list)
    aliases: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: top-level assignments, name -> "mutable" | "other".
    module_globals: Dict[str, str] = field(default_factory=dict)
    spec_regs: List[SpecReg] = field(default_factory=list)
    #: raw first-arg names of pool ``.submit``/``run_conveyor`` calls.
    worker_entries: List[Tuple[str, int]] = field(default_factory=list)
    suppressions: _Suppressions = field(default_factory=_Suppressions)
    syntax_error: Optional[Tuple[int, int, str]] = None

    def all_functions(self) -> Iterable[FunctionSummary]:
        yield from self.functions.values()
        for klass in self.classes.values():
            yield from klass.methods.values()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module, "path": self.path,
            "relpath": self.relpath, "digest": self.digest,
            "imports": [e.to_dict() for e in self.imports],
            "aliases": self.aliases,
            "functions": {k: f.to_dict()
                          for k, f in self.functions.items()},
            "classes": {k: c.to_dict() for k, c in self.classes.items()},
            "module_globals": self.module_globals,
            "spec_regs": [s.to_dict() for s in self.spec_regs],
            "worker_entries": [list(w) for w in self.worker_entries],
            "suppressions": {
                "file_level": sorted(self.suppressions.file_level),
                "by_line": {str(k): sorted(v)
                            for k, v in self.suppressions.by_line.items()},
                "directives": [list(d) for d in self.suppressions.directives],
            },
            "syntax_error": (list(self.syntax_error)
                             if self.syntax_error else None),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        sup = _Suppressions(
            file_level=set(data["suppressions"]["file_level"]),
            by_line={int(k): set(v)
                     for k, v in data["suppressions"]["by_line"].items()},
            directives=[(d[0], d[1], tuple(d[2]))
                        for d in data["suppressions"]["directives"]])
        err = data.get("syntax_error")
        return cls(
            module=data["module"], path=data["path"],
            relpath=data["relpath"], digest=data["digest"],
            imports=[ImportEdge(e["target"], e["symbol"], e["line"],
                                e["lazy"]) for e in data["imports"]],
            aliases=data["aliases"],
            functions={k: FunctionSummary.from_dict(f)
                       for k, f in data["functions"].items()},
            classes={k: ClassSummary.from_dict(c)
                     for k, c in data["classes"].items()},
            module_globals=data["module_globals"],
            spec_regs=[SpecReg(s["line"],
                               tuple((k, v) for k, v in s["kwargs"]))
                       for s in data["spec_regs"]],
            worker_entries=[(w[0], w[1]) for w in data["worker_entries"]],
            suppressions=sup,
            syntax_error=(err[0], err[1], err[2]) if err else None,
        )


# ---------------------------------------------------------------------------
# module naming
# ---------------------------------------------------------------------------
def _package_root(path: str) -> str:
    """Topmost directory whose chain down to ``path`` is all packages."""
    directory = os.path.dirname(os.path.abspath(path))
    while os.path.exists(os.path.join(directory, "__init__.py")):
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    return directory


def module_name_for(path: str) -> str:
    """Dotted module name of ``path`` relative to its package root."""
    root = _package_root(path)
    rel = os.path.relpath(os.path.abspath(path), root)
    parts = rel.replace(os.sep, "/").split("/")
    parts[-1] = parts[-1][:-len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else os.path.basename(root)


def _containing_package(module: str, is_init: bool) -> List[str]:
    parts = module.split(".")
    return parts if is_init else parts[:-1]


# ---------------------------------------------------------------------------
# the summariser
# ---------------------------------------------------------------------------
def _dotted(node: ast.AST) -> str:
    """Flatten Name/Attribute chains ("a.b.c"); "" when not a chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _factory_name(node: ast.AST) -> str:
    """Value expr of a spec kwarg: name, ``lambda: X(...)``, or literal."""
    if isinstance(node, ast.Lambda) and isinstance(node.body, ast.Call):
        return _dotted(node.body.func)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return _dotted(node)


#: Mutating container/obj methods treated as writes to the receiver.
_MUTATORS = frozenset({
    "append", "add", "update", "setdefault", "extend", "insert",
    "remove", "discard", "clear", "pop", "popitem", "appendleft",
})

_MUTABLE_CTORS = frozenset({"dict", "list", "set", "defaultdict",
                            "OrderedDict", "deque", "Counter"})


class _Summarizer(ast.NodeVisitor):
    """One-pass walker building a :class:`ModuleSummary`."""

    def __init__(self, summary: ModuleSummary, package: List[str]) -> None:
        self.s = summary
        self.package = package
        self.func_stack: List[FunctionSummary] = []
        self.class_stack: List[ClassSummary] = []
        self.local_stack: List[Set[str]] = []
        self.type_checking_depth = 0

    # -- imports ---------------------------------------------------------
    def _add_alias(self, name: str, target: str) -> None:
        # A function-local import binds a *shared* object (module or
        # class), not function-local state: record the alias but keep
        # the name out of the locals set so writes through it are still
        # seen as writes to shared state.
        if self.func_stack:
            self.func_stack[-1].local_aliases[name] = target
        elif not self.class_stack:
            self.s.aliases[name] = target

    def _lazy(self) -> bool:
        return bool(self.func_stack) or self.type_checking_depth > 0

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.s.imports.append(ImportEdge(
                target=alias.name, symbol="", line=node.lineno,
                lazy=self._lazy()))
            bound = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self._add_alias(bound, target)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = self.package[:len(self.package) - (node.level - 1)]
            module = ".".join(base + ([node.module] if node.module else []))
        else:
            module = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                self.s.imports.append(ImportEdge(
                    target=module, symbol="*", line=node.lineno,
                    lazy=self._lazy()))
                continue
            self.s.imports.append(ImportEdge(
                target=module, symbol=alias.name, line=node.lineno,
                lazy=self._lazy()))
            self._add_alias(alias.asname or alias.name,
                            f"{module}.{alias.name}")

    # -- TYPE_CHECKING blocks are typing-only (treated as lazy) ----------
    def visit_If(self, node: ast.If) -> None:
        test = _dotted(node.test)
        if test in ("TYPE_CHECKING", "typing.TYPE_CHECKING"):
            self.type_checking_depth += 1
            for child in node.body:
                self.visit(child)
            self.type_checking_depth -= 1
            for child in node.orelse:
                self.visit(child)
            return
        self.generic_visit(node)

    # -- defs ------------------------------------------------------------
    def _signature(self, fn: FunctionSummary,
                   args: ast.arguments) -> None:
        positional = list(args.posonlyargs) + list(args.args)
        fn.params = [a.arg for a in positional]
        for param, default in zip(fn.params[len(fn.params)
                                            - len(args.defaults):],
                                  args.defaults):
            fn.defaults[param] = ast.unparse(default)
        fn.kwonly = [a.arg for a in args.kwonlyargs]
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                fn.defaults[arg.arg] = ast.unparse(default)
        fn.has_vararg = args.vararg is not None
        fn.has_kwarg = args.kwarg is not None

    def _visit_def(self, node: Any) -> None:
        qual = (f"{self.class_stack[-1].name}.{node.name}"
                if self.class_stack else node.name)
        fn = FunctionSummary(name=qual, line=node.lineno)
        fn.decorators = [_dotted(d) or ast.unparse(d)
                         for d in node.decorator_list]
        self._signature(fn, node.args)
        if self.class_stack and not self.func_stack:
            self.class_stack[-1].methods[node.name] = fn
        elif not self.func_stack:
            self.s.functions[node.name] = fn
        # Nested defs fold into the enclosing function's summary (their
        # bodies still contribute calls/reads/writes to it).
        target = self.func_stack[-1] if self.func_stack else fn
        locals_ = set(fn.params) | set(fn.kwonly)
        if node.args.vararg:
            locals_.add(node.args.vararg.arg)
        if node.args.kwarg:
            locals_.add(node.args.kwarg.arg)
        if self.func_stack:
            self.local_stack[-1].update(locals_)
            for child in node.body:
                self.visit(child)
            return
        self.func_stack.append(target)
        self.local_stack.append(locals_)
        for child in node.body:
            self.visit(child)
        self.local_stack.pop()
        self.func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.func_stack:  # function-local class: opaque
            self.generic_visit(node)
            return
        klass = ClassSummary(name=node.name, line=node.lineno)
        klass.bases = [_dotted(b) for b in node.bases if _dotted(b)]
        klass.decorators = [_dotted(d) or ast.unparse(d)
                            for d in node.decorator_list]
        self.s.classes[node.name] = klass
        self.class_stack.append(klass)
        for child in node.body:
            if isinstance(child, ast.AnnAssign) and isinstance(
                    child.target, ast.Name):
                klass.fields[child.target.id] = ast.unparse(
                    child.annotation)
            elif isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        klass.class_attrs[target.id] = ast.unparse(
                            child.value)
            self.visit(child)
        self.class_stack.pop()

    # -- module globals --------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if not self.func_stack and not self.class_stack:
            kind = self._value_kind(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.s.module_globals[target.id] = kind
        self._check_write_target(node)
        if self.func_stack:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.local_stack[-1].add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (not self.func_stack and not self.class_stack
                and isinstance(node.target, ast.Name)
                and node.value is not None):
            self.s.module_globals[node.target.id] = self._value_kind(
                node.value)
        self._check_write_target(node)
        if self.func_stack and isinstance(node.target, ast.Name):
            self.local_stack[-1].add(node.target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write_target(node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self.func_stack:
            for name in ast.walk(node.target):
                if isinstance(name, ast.Name):
                    self.local_stack[-1].add(name.id)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        if self.func_stack:
            for item in node.items:
                if item.optional_vars is not None:
                    for name in ast.walk(item.optional_vars):
                        if isinstance(name, ast.Name):
                            self.local_stack[-1].add(name.id)
        self.generic_visit(node)

    @staticmethod
    def _value_kind(value: ast.AST) -> str:
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return "mutable"
        if isinstance(value, ast.Call):
            name = _dotted(value.func).split(".")[-1]
            if name in _MUTABLE_CTORS:
                return "mutable"
        return "other"

    def visit_Global(self, node: ast.Global) -> None:
        if self.func_stack:
            fn = self.func_stack[-1]
            for name in node.names:
                fn.writes.append(WriteSite(
                    base=name, attr="", line=node.lineno, kind="rebind"))

    def _check_write_target(self, node: Any) -> None:
        """Record ``X[...] = v`` / ``X.attr = v`` with non-local ``X``."""
        if not self.func_stack:
            return
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        fn = self.func_stack[-1]
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name):
                base = target.value.id
                if not self._is_local(base):
                    fn.writes.append(WriteSite(
                        base=base, attr="", line=target.lineno,
                        kind="mutate"))
            elif isinstance(target, ast.Attribute):
                base = _dotted(target.value)
                root = base.split(".")[0] if base else ""
                if root and root not in ("self", "cls") and \
                        not self._is_local(root):
                    fn.writes.append(WriteSite(
                        base=base, attr=target.attr, line=target.lineno,
                        kind="setattr"))

    def _is_local(self, name: str) -> bool:
        return bool(self.local_stack) and name in self.local_stack[-1]

    # -- calls / reads ---------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        callee = _dotted(node.func)
        if self.func_stack and callee:
            fn = self.func_stack[-1]
            fn.calls.append(CallSite(
                callee=callee, line=node.lineno,
                args=tuple(a.id if isinstance(a, ast.Name) else None
                           for a in node.args),
                kwargs=tuple(
                    (kw.arg, kw.value.id
                     if isinstance(kw.value, ast.Name) else None)
                    for kw in node.keywords if kw.arg is not None)))
            # Mutating method on a non-local receiver: CACHE.append(...)
            if "." in callee:
                base, method = callee.rsplit(".", 1)
                root = base.split(".")[0]
                if (method in _MUTATORS and root not in ("self", "cls")
                        and not self._is_local(root)):
                    fn.writes.append(WriteSite(
                        base=base, attr="", line=node.lineno,
                        kind="mutate"))
        # Worker-entry detection: pool.submit(f, ...) / run_conveyor(f, ..)
        leaf = callee.split(".")[-1] if callee else ""
        if leaf in ("submit", "run_conveyor") and node.args and \
                isinstance(node.args[0], ast.Name):
            self.s.worker_entries.append(
                (node.args[0].id, node.lineno))
        # Spec registration: register(ExperimentSpec(...))
        if leaf == "register" and len(node.args) == 1 and isinstance(
                node.args[0], ast.Call):
            inner = node.args[0]
            if _dotted(inner.func).split(".")[-1] == "ExperimentSpec":
                self.s.spec_regs.append(SpecReg(
                    line=node.lineno,
                    kwargs=tuple(
                        (kw.arg, _factory_name(kw.value))
                        for kw in inner.keywords if kw.arg is not None)))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.func_stack and isinstance(node.ctx, ast.Load) and \
                isinstance(node.value, ast.Name):
            self.func_stack[-1].attr_reads.append(
                (node.value.id, node.attr, node.lineno))
        self.generic_visit(node)


def summarize_source(source: str, path: str, relpath: str,
                     digest: str = "") -> ModuleSummary:
    """Build one module's summary (syntax errors become a marker)."""
    module = module_name_for(path)
    summary = ModuleSummary(module=module, path=os.path.abspath(path),
                            relpath=relpath, digest=digest)
    summary.suppressions = _parse_suppressions(source.splitlines())
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        summary.syntax_error = (exc.lineno or 1, exc.offset or 0,
                                exc.msg or "invalid syntax")
        return summary
    is_init = os.path.basename(path) == "__init__.py"
    package = _containing_package(module, is_init)
    _Summarizer(summary, package).visit(tree)
    return summary


# ---------------------------------------------------------------------------
# the linked graph
# ---------------------------------------------------------------------------
@dataclass
class FlowStats:
    """How the graph was built (surfaced on stderr and in tests)."""

    files: int = 0
    parsed: int = 0
    cached: int = 0
    elapsed: float = 0.0

    def describe(self) -> str:
        return (f"flows: {self.files} modules ({self.parsed} parsed, "
                f"{self.cached} from cache) in {self.elapsed:.3f}s")


class ProgramGraph:
    """All module summaries, linked for cross-module resolution."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        self.order: List[str] = sorted(self.modules)

    # -- lookups ---------------------------------------------------------
    def module(self, name: str) -> Optional[ModuleSummary]:
        return self.modules.get(name)

    def summaries(self) -> Iterable[ModuleSummary]:
        for name in self.order:
            yield self.modules[name]

    def has_module(self, dotted: str) -> bool:
        return dotted in self.modules

    def _split_symbol(self, dotted: str) -> Tuple[Optional[str], str]:
        """Split ``a.b.c`` into (module, symbol-path) against the universe."""
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in self.modules:
                return candidate, ".".join(parts[i:])
        return None, dotted

    def resolve(self, module: str, name: str,
                local_aliases: Optional[Dict[str, str]] = None,
                _hops: int = 0) -> Optional[Tuple[str, str]]:
        """Resolve a dotted name to ``(module, symbol)`` in the universe.

        ``symbol`` may itself be dotted ("Class.method") or "" when the
        name resolves to a module.  Follows re-export chains (``from .x
        import f`` in an ``__init__``) up to :data:`_MAX_ALIAS_HOPS`.
        """
        if _hops > _MAX_ALIAS_HOPS:
            return None
        summary = self.modules.get(module)
        if summary is None:
            return None
        head, _, rest = name.partition(".")
        # Local (function-level) aliases shadow module-level ones.
        target = None
        if local_aliases and head in local_aliases:
            target = local_aliases[head]
        elif head in summary.aliases:
            target = summary.aliases[head]
        if target is None:
            if head in summary.functions or head in summary.classes or \
                    head in summary.module_globals:
                symbol = head + (f".{rest}" if rest else "")
                return module, symbol
            return None
        dotted = target + (f".{rest}" if rest else "")
        target_module, symbol = self._split_symbol(dotted)
        if target_module is None:
            return None
        if not symbol:
            return target_module, ""
        target_summary = self.modules[target_module]
        head2 = symbol.split(".")[0]
        if head2 in target_summary.functions or \
                head2 in target_summary.classes or \
                head2 in target_summary.module_globals:
            return target_module, symbol
        # Re-exported: chase the alias in the target module.
        return self.resolve(target_module, symbol, _hops=_hops + 1)

    def find_function(self, module: str, name: str,
                      local_aliases: Optional[Dict[str, str]] = None,
                      ) -> Optional[Tuple[ModuleSummary, FunctionSummary]]:
        """Resolve a callee name to its :class:`FunctionSummary`."""
        resolved = self.resolve(module, name, local_aliases)
        if resolved is None:
            return None
        mod_name, symbol = resolved
        summary = self.modules[mod_name]
        if not symbol:
            return None
        parts = symbol.split(".")
        if len(parts) == 1:
            fn = summary.functions.get(parts[0])
            return (summary, fn) if fn is not None else None
        if len(parts) == 2 and parts[0] in summary.classes:
            fn = summary.classes[parts[0]].methods.get(parts[1])
            return (summary, fn) if fn is not None else None
        return None

    def find_class(self, module: str, name: str,
                   ) -> Optional[Tuple[ModuleSummary, ClassSummary]]:
        resolved = self.resolve(module, name)
        if resolved is None:
            return None
        mod_name, symbol = resolved
        summary = self.modules[mod_name]
        if symbol and symbol in summary.classes:
            return summary, summary.classes[symbol]
        return None

    def mro(self, module: str, class_name: str,
            limit: int = 12) -> List[Tuple[ModuleSummary, ClassSummary]]:
        """The in-universe base-class chain (C3 not needed: linear walk)."""
        out: List[Tuple[ModuleSummary, ClassSummary]] = []
        queue: List[Tuple[str, str]] = [(module, class_name)]
        seen: Set[Tuple[str, str]] = set()
        while queue and len(out) < limit:
            mod, name = queue.pop(0)
            if (mod, name) in seen:
                continue
            seen.add((mod, name))
            found = self.find_class(mod, name)
            if found is None:
                continue
            summary, klass = found
            out.append((summary, klass))
            for base in klass.bases:
                queue.append((summary.module, base))
        return out


# ---------------------------------------------------------------------------
# building (with the incremental cache)
# ---------------------------------------------------------------------------
def _digest(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _load_cache(cache_path: Optional[str]) -> Dict[str, Any]:
    if not cache_path or not os.path.exists(cache_path):
        return {}
    try:
        with open(cache_path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("format") != FLOWS_FORMAT:
        return {}
    files = data.get("files")
    return files if isinstance(files, dict) else {}


def _store_cache(cache_path: Optional[str],
                 entries: Dict[str, Any]) -> None:
    if not cache_path:
        return
    payload = {"format": FLOWS_FORMAT, "files": entries}
    tmp = f"{cache_path}.tmp.{os.getpid()}"
    try:
        os.makedirs(os.path.dirname(os.path.abspath(cache_path)),
                    exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, separators=(",", ":"))
        os.replace(tmp, cache_path)
    except OSError:
        # The cache is an accelerator, never a correctness dependency.
        try:
            os.remove(tmp)
        except OSError:
            pass


def build_graph(files: Sequence[str], root: Optional[str] = None,
                cache_path: Optional[str] = None,
                ) -> Tuple[ProgramGraph, FlowStats]:
    """Parse (or cache-load) every file and link the program graph."""
    t0 = time.perf_counter()
    cache = _load_cache(cache_path)
    next_cache: Dict[str, Any] = {}
    summaries: List[ModuleSummary] = []
    stats = FlowStats(files=len(files))
    for path in files:
        abspath = os.path.abspath(path)
        relpath = os.path.relpath(path, root) if root else path
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError:
            continue
        digest = _digest(raw)
        entry = cache.get(abspath)
        if entry and entry.get("digest") == digest:
            try:
                summary = ModuleSummary.from_dict(entry["summary"])
                summary.relpath = relpath  # root may differ between runs
                summaries.append(summary)
                next_cache[abspath] = entry
                stats.cached += 1
                continue
            except (KeyError, TypeError, ValueError):
                pass  # corrupted entry: fall through to a fresh parse
        summary = summarize_source(raw.decode("utf-8", "replace"),
                                   abspath, relpath, digest)
        summaries.append(summary)
        next_cache[abspath] = {"digest": digest,
                               "summary": summary.to_dict()}
        stats.parsed += 1
    _store_cache(cache_path, next_cache)
    graph = ProgramGraph(summaries)
    stats.elapsed = time.perf_counter() - t0
    return graph, stats
