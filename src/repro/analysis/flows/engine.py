"""The flow-rule registry, runner, and baseline machinery.

:func:`run_flows` is the whole pass: collect files, build (or
cache-load) the program graph, run every flow rule over it, honour the
same ``# simlint: disable`` pragmas as the per-file engine, and split
the surviving findings against an optional committed **baseline** of
grandfathered findings.

Baselines exist so a new rule can land gated even when the tree has
pre-existing violations that are understood and accepted: ``repro lint
--flows --write-baseline`` records them; subsequent runs fail only on
findings *not* in the baseline.  A baseline entry fingerprints
``rule|path|message`` (not the line number — messages are written to be
line-free-stable, so unrelated edits above a grandfathered site don't
churn the file), and entries that no longer match anything are
reported as stale so the file shrinks monotonically.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..engine import Finding, collect_files
from .base import FlowRule
from .drift import ProtocolDriftRule
from .graph import FlowStats, ProgramGraph, build_graph
from .keys import CacheKeyRule
from .layers import (REPRO_LAYERS, BrokerFactoryRule, LayerDagRule,
                     ObsIsolationRule, SimPurityRule)
from .purity import WorkerPurityRule

__all__ = [
    "FLOW_RULES",
    "FlowReport",
    "FlowRule",
    "baseline_fingerprint",
    "flow_rules_by_id",
    "load_baseline",
    "run_flows",
    "write_baseline",
]

#: Every flow rule, in documentation order.
FLOW_RULES: Tuple[FlowRule, ...] = (
    LayerDagRule(REPRO_LAYERS),
    ObsIsolationRule(REPRO_LAYERS),
    SimPurityRule(REPRO_LAYERS),
    BrokerFactoryRule(REPRO_LAYERS),
    CacheKeyRule(),
    WorkerPurityRule(),
    ProtocolDriftRule(),
)


def flow_rules_by_id(ids: Iterable[str]) -> List[FlowRule]:
    """Resolve flow-rule ids; unknown ids raise listing the valid set."""
    by_id = {rule.id: rule for rule in FLOW_RULES}
    out: List[FlowRule] = []
    for rule_id in ids:
        if rule_id not in by_id:
            known = ", ".join(sorted(by_id))
            raise KeyError(
                f"unknown flow rule {rule_id!r}; known rules: {known}")
        out.append(by_id[rule_id])
    return out


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------
def baseline_fingerprint(finding: Finding) -> str:
    """Stable id of a finding: rule|path|message, line-independent."""
    norm_path = finding.path.replace(os.sep, "/")
    raw = f"{finding.rule}|{norm_path}|{finding.message}"
    return hashlib.blake2b(raw.encode("utf-8"),
                           digest_size=12).hexdigest()


def load_baseline(path: str) -> Dict[str, Dict[str, object]]:
    """fingerprint -> entry; empty on missing/invalid file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    entries = data.get("findings") if isinstance(data, dict) else None
    if not isinstance(entries, dict):
        return {}
    return {fp: entry for fp, entry in entries.items()
            if isinstance(entry, dict)}


def write_baseline(path: str, findings: Sequence[Finding]) -> int:
    """Write the grandfather file; returns the entry count."""
    entries: Dict[str, Dict[str, object]] = {}
    for finding in sorted(findings,
                          key=lambda f: (f.path, f.line, f.rule)):
        entries[baseline_fingerprint(finding)] = {
            "rule": finding.rule,
            "path": finding.path.replace(os.sep, "/"),
            "line": finding.line,  # informational; not part of the fp
            "message": finding.message,
        }
    payload = {
        "tool": "simlint-flows",
        "note": ("Grandfathered findings. Entries are matched by "
                 "rule|path|message fingerprint; fix the finding and "
                 "rerun with --write-baseline to shrink this file. "
                 "Never add entries by hand."),
        "findings": entries,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------
@dataclass
class FlowReport:
    """Everything one ``--flows`` run produced."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    stats: FlowStats = field(default_factory=FlowStats)
    graph: Optional[ProgramGraph] = None
    rule_ids: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "tool": "simlint-flows",
            "checked_files": self.stats.files,
            "parsed": self.stats.parsed,
            "cached": self.stats.cached,
            "rules": self.rule_ids,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": len(self.baselined),
            "suppressed": len(self.suppressed),
            "stale_baseline": list(self.stale_baseline),
            "count": len(self.findings),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)


def run_flows(paths: Iterable[str], *,
              root: Optional[str] = None,
              rules: Optional[Sequence[FlowRule]] = None,
              cache_path: Optional[str] = None,
              baseline_path: Optional[str] = None) -> FlowReport:
    """Run the whole-program pass over every ``.py`` under ``paths``."""
    files = collect_files(paths)
    graph, stats = build_graph(files, root=root, cache_path=cache_path)
    active_rules = list(rules if rules is not None else FLOW_RULES)
    report = FlowReport(stats=stats, graph=graph,
                        rule_ids=[r.id for r in active_rules])

    raw: List[Finding] = []
    suppressions_by_path = {}
    for summary in graph.summaries():
        suppressions_by_path[summary.relpath] = summary.suppressions
        if summary.syntax_error is not None:
            line, col, msg = summary.syntax_error
            raw.append(Finding(
                rule="syntax-error", category="parse",
                path=summary.relpath, line=line, col=col,
                message=f"file does not parse: {msg}"))
    for rule in active_rules:
        raw.extend(rule.check(graph))

    baseline = load_baseline(baseline_path) if baseline_path else {}
    matched_fps = set()
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.col,
                                              f.rule, f.message)):
        sup = suppressions_by_path.get(finding.path)
        if sup is not None and sup.active(finding.rule, finding.line):
            report.suppressed.append(finding)
            continue
        fp = baseline_fingerprint(finding)
        if fp in baseline:
            matched_fps.add(fp)
            report.baselined.append(finding)
            continue
        report.findings.append(finding)
    report.stale_baseline = sorted(
        fp for fp in baseline if fp not in matched_fps)
    return report
