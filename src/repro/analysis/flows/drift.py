"""Protocol drift: structural surface checks ``runtime_checkable`` skips.

``isinstance(broker, BrokerProtocol)`` only verifies that the methods
*exist* — ``runtime_checkable`` explicitly does not compare signatures.
A broker whose ``cancel`` renames ``reason`` or drops its default still
passes the runtime check and only fails when a keyword call reaches it.
Likewise ``ExperimentSpec`` is a plain dataclass of callables: nothing
at registration time verifies the callables take the arguments the
engine will pass (``plan(config)``, ``run_cell(config, key)``,
``merge(config, payloads)``).

This rule closes both gaps statically:

* every ``@runtime_checkable`` Protocol class in the universe is
  matched against its structural implementers (classes that define all
  of its methods, directly or via in-universe MRO) and each method
  signature is compared — positional parameter names in order, which
  parameters carry defaults, and the default expressions themselves;
* every ``register(ExperimentSpec(...))`` site is checked for callable
  arity against the engine's calling convention.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..engine import Finding
from .base import FlowRule
from .graph import (ClassSummary, FunctionSummary, ModuleSummary,
                    ProgramGraph)

__all__ = ["ProtocolDriftRule"]

#: The engine's calling convention per spec role: (role, n_positional).
_SPEC_ARITIES = (("plan", 1), ("run_cell", 2), ("merge", 2))


def _is_protocol(klass: ClassSummary) -> bool:
    if not any(base.split(".")[-1] == "Protocol" for base in klass.bases):
        return False
    return any(dec.split(".")[-1] == "runtime_checkable"
               for dec in klass.decorators)


def _method_map(graph: ProgramGraph, module: str, class_name: str,
                ) -> Dict[str, Tuple[str, FunctionSummary]]:
    """name -> (defining module, summary), nearest-in-MRO wins."""
    out: Dict[str, Tuple[str, FunctionSummary]] = {}
    for summary, klass in graph.mro(module, class_name):
        for name, fn in klass.methods.items():
            out.setdefault(name, (summary.module, fn))
    return out


def _positional(fn: FunctionSummary) -> List[str]:
    params = list(fn.params)
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    return params


class ProtocolDriftRule(FlowRule):
    """Implementer signatures must match their Protocol, member by member."""

    id = "flow-protocol-drift"
    category = "contracts"

    def check(self, graph: ProgramGraph) -> Iterable[Finding]:
        protocols = [
            (summary, klass)
            for summary in graph.summaries()
            for klass in summary.classes.values()
            if _is_protocol(klass)
        ]
        for proto_summary, proto in protocols:
            yield from self._check_protocol(graph, proto_summary, proto)
        for summary in graph.summaries():
            for reg in summary.spec_regs:
                yield from self._check_spec_arity(graph, summary, reg)

    # -- Protocol implementers ------------------------------------------
    def _check_protocol(self, graph: ProgramGraph,
                        proto_summary: ModuleSummary,
                        proto: ClassSummary) -> Iterable[Finding]:
        proto_methods = {name: fn for name, fn in proto.methods.items()
                         if not name.startswith("_")}
        if not proto_methods:
            return
        for summary in graph.summaries():
            for klass in summary.classes.values():
                if klass is proto or _is_protocol(klass):
                    continue
                methods = _method_map(graph, summary.module, klass.name)
                if not all(name in methods for name in proto_methods):
                    continue  # not a structural implementer
                for name, proto_fn in sorted(proto_methods.items()):
                    impl_module, impl_fn = methods[name]
                    impl_summary = graph.module(impl_module)
                    if impl_summary is None:
                        continue
                    yield from self._compare(
                        impl_summary, klass, proto.name, name,
                        proto_fn, impl_fn)

    def _compare(self, summary: ModuleSummary, klass: ClassSummary,
                 proto_name: str, method: str,
                 proto_fn: FunctionSummary,
                 impl_fn: FunctionSummary) -> Iterable[Finding]:
        where = f"{klass.name}.{method}"
        proto_params = _positional(proto_fn)
        impl_params = _positional(impl_fn)
        if impl_fn.has_vararg and impl_fn.has_kwarg and not impl_params:
            return  # pure (*args, **kwargs) forwarder: can't drift
        for idx, pname in enumerate(proto_params):
            if idx >= len(impl_params):
                if impl_fn.has_vararg:
                    break
                yield self.finding(
                    summary, impl_fn.line,
                    f"protocol drift: {where} is missing parameter "
                    f"{pname!r} declared by {proto_name}.{method}")
                continue
            iname = impl_params[idx]
            if iname != pname:
                yield self.finding(
                    summary, impl_fn.line,
                    f"protocol drift: {where} parameter {idx + 1} is "
                    f"{iname!r} but {proto_name}.{method} declares "
                    f"{pname!r}; keyword callers will break")
                continue
            pdefault = proto_fn.defaults.get(pname)
            idefault = impl_fn.defaults.get(iname)
            if pdefault is not None and idefault is None:
                yield self.finding(
                    summary, impl_fn.line,
                    f"protocol drift: {where} drops the default for "
                    f"{pname!r} ({proto_name}.{method} declares "
                    f"{pname}={pdefault})")
            elif pdefault is not None and idefault != pdefault:
                yield self.finding(
                    summary, impl_fn.line,
                    f"protocol drift: {where} default {pname}="
                    f"{idefault} differs from {proto_name}.{method} "
                    f"({pname}={pdefault})")
        # Extra *required* params beyond the protocol surface break
        # protocol-typed call sites; extra optional ones are fine.
        for extra in impl_params[len(proto_params):]:
            if extra not in impl_fn.defaults:
                yield self.finding(
                    summary, impl_fn.line,
                    f"protocol drift: {where} requires parameter "
                    f"{extra!r} that {proto_name}.{method} does not "
                    "declare")

    # -- ExperimentSpec callables ---------------------------------------
    def _check_spec_arity(self, graph: ProgramGraph,
                          summary: ModuleSummary,
                          reg) -> Iterable[Finding]:
        exp = reg.kwarg("experiment_id") or "?"
        for role, arity in _SPEC_ARITIES:
            target = reg.kwarg(role)
            if not target:
                continue
            resolved = graph.find_function(summary.module, target)
            if resolved is None:
                continue
            impl_summary, fn = resolved
            params = _positional(fn)
            required = [p for p in params if p not in fn.defaults]
            required_kwonly = [p for p in fn.kwonly
                               if p not in fn.defaults]
            if len(required) > arity or required_kwonly:
                yield self.finding(
                    summary, reg.line,
                    f"spec drift: ExperimentSpec({exp}).{role} = "
                    f"{target} requires "
                    f"{len(required) + len(required_kwonly)} "
                    f"argument(s) but the engine passes {arity}")
            elif len(params) < arity and not fn.has_vararg:
                yield self.finding(
                    summary, reg.line,
                    f"spec drift: ExperimentSpec({exp}).{role} = "
                    f"{target} accepts {len(params)} argument(s) but "
                    f"the engine passes {arity}")
