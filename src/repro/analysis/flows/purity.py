"""Worker purity: no module-global writes behind worker entry points.

The runner's serial == parallel == cached guarantee assumes a cell
computes the same payload whether it runs in-process or inside a
ProcessPoolExecutor / conveyor worker.  Module-level mutable state
breaks that silently: in the parent the writes accumulate across
cells; in a forked worker each process starts from import-time state.
Until now that invariant rested on review alone.

The rule collects every **worker entry point** in the universe —

* the first argument of ``<pool>.submit(f, ...)`` and
  ``run_conveyor(f, ...)`` calls (the runner engine's
  ``_execute_cell``, the conveyor's ``_run_window``), and
* every callable registered on an ``ExperimentSpec`` (``run_cell`` /
  ``plan`` / ``merge``), because the engine dispatches to them through
  ``spec.run_cell`` — an attribute call no static call graph resolves —
  from inside ``_execute_cell``

— then walks the call graph from each entry and flags writes that
escape function scope: rebinding a module global (``global X; X =``),
mutating one (``CACHE[k] =``, ``STATE.append(...)``), or setting
attributes on a class or module (``Environment.telemetry_factory =``).
Reads stay legal; so does module-init state that is never written
after import.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..engine import Finding
from .base import FlowRule
from .graph import FunctionSummary, ModuleSummary, ProgramGraph

__all__ = ["WorkerPurityRule", "collect_worker_entries"]

_MAX_CALL_DEPTH = 12

#: Well-known process/thread-local or intentionally-global stdlib
#: receivers that are not part of the determinism contract.
_IGNORED_ROOTS = frozenset({"os", "sys", "logging", "warnings"})


def collect_worker_entries(graph: ProgramGraph,
                           ) -> List[Tuple[ModuleSummary, FunctionSummary,
                                           str]]:
    """All worker entry functions with a human-readable origin label."""
    out: Dict[Tuple[str, str], Tuple[ModuleSummary, FunctionSummary,
                                     str]] = {}

    def add(resolved: Optional[Tuple[ModuleSummary, FunctionSummary]],
            origin: str) -> None:
        if resolved is None:
            return
        summary, fn = resolved
        out.setdefault((summary.module, fn.name), (summary, fn, origin))

    for summary in graph.summaries():
        for name, line in summary.worker_entries:
            add(graph.find_function(summary.module, name),
                f"pool submit at {summary.relpath}:{line}")
        for reg in summary.spec_regs:
            exp = reg.kwarg("experiment_id") or "?"
            for role in ("run_cell", "plan", "merge"):
                target = reg.kwarg(role)
                if target:
                    add(graph.find_function(summary.module, target),
                        f"ExperimentSpec({exp}).{role}")
    return [out[key] for key in sorted(out)]


class WorkerPurityRule(FlowRule):
    """Flags module/class-state writes reachable from worker entries.

    A finding means a function on some worker entry's call path writes
    state that outlives the call: the serial and parallel runs of the
    same plan then see different module state, which is exactly what
    the golden-determinism contract forbids.
    """

    id = "flow-worker-purity"
    category = "determinism"

    def check(self, graph: ProgramGraph) -> Iterable[Finding]:
        entries = collect_worker_entries(graph)
        reported: Set[Tuple[str, int, str]] = set()
        for summary, fn, origin in entries:
            yield from self._walk(graph, summary, fn, origin, reported)

    def _walk(self, graph: ProgramGraph, entry_summary: ModuleSummary,
              entry_fn: FunctionSummary, origin: str,
              reported: Set[Tuple[str, int, str]]) -> Iterable[Finding]:
        seen: Set[Tuple[str, str]] = set()
        stack: List[Tuple[str, FunctionSummary, Tuple[str, ...], int]] = [
            (entry_summary.module, entry_fn, (entry_fn.name,), 0)]
        while stack:
            mod, fn, chain, depth = stack.pop()
            if (mod, fn.name) in seen or depth > _MAX_CALL_DEPTH:
                continue
            seen.add((mod, fn.name))
            summary = graph.module(mod)
            if summary is None:
                continue
            for write in fn.writes:
                finding = self._classify(graph, summary, fn, write,
                                         origin, chain)
                if finding is not None:
                    key = (finding.path, finding.line, finding.message)
                    if key not in reported:
                        reported.add(key)
                        yield finding
            for call in fn.calls:
                resolved = graph.find_function(mod, call.callee,
                                               fn.local_aliases)
                if resolved is None:
                    continue
                callee_summary, callee = resolved
                stack.append((callee_summary.module, callee,
                              chain + (callee.name,), depth + 1))

    def _classify(self, graph: ProgramGraph, summary: ModuleSummary,
                  fn: FunctionSummary, write, origin: str,
                  chain: Tuple[str, ...]) -> Optional[Finding]:
        root = write.base.split(".")[0]
        if root in _IGNORED_ROOTS:
            return None
        via = " -> ".join(chain)
        if write.kind == "rebind":
            if root in summary.module_globals:
                return self.finding(
                    summary, write.line,
                    f"worker purity: {fn.name} rebinds module global "
                    f"{root!r} ({summary.module}); reachable from "
                    f"worker entry [{origin}] via {via}")
            return None
        resolved = graph.resolve(summary.module, root, fn.local_aliases)
        if resolved is None:
            return None
        target_module, symbol = resolved
        target = graph.module(target_module)
        if target is None:
            return None
        if write.kind == "mutate":
            if symbol and symbol.split(".")[0] in target.module_globals:
                return self.finding(
                    summary, write.line,
                    f"worker purity: {fn.name} mutates module global "
                    f"{symbol.split('.')[0]!r} ({target_module}); "
                    f"reachable from worker entry [{origin}] via {via}")
            return None
        # setattr: writing an attribute on a class or a module object.
        if not symbol:
            return self.finding(
                summary, write.line,
                f"worker purity: {fn.name} sets "
                f"{target_module}.{write.attr}; module attributes "
                f"written from worker paths diverge between serial "
                f"and forked runs (entry [{origin}] via {via})")
        head = symbol.split(".")[0]
        if head in target.classes:
            return self.finding(
                summary, write.line,
                f"worker purity: {fn.name} sets class attribute "
                f"{head}.{write.attr} ({target_module}); reachable "
                f"from worker entry [{origin}] via {via}")
        if head in target.module_globals:
            return self.finding(
                summary, write.line,
                f"worker purity: {fn.name} sets attribute "
                f"{write.attr!r} on module global {head!r} "
                f"({target_module}); reachable from worker entry "
                f"[{origin}] via {via}")
        return None
