"""simlint flows — whole-program import/call-graph analysis.

The per-file rule engine (:mod:`repro.analysis.engine`) sees one AST at
a time; the contracts that broke in practice are *cross-module*: an
import chain that sneaks an upper layer under a lower one, a config
field the cell reads but the cache key never hashes (the PR-8
``cache_salt`` bump), module state mutated behind a process-pool worker
entry point, and protocol implementers drifting from the structural
surface that ``runtime_checkable`` cannot inspect.

``flows`` parses the whole tree once into per-module summaries
(:mod:`.graph` — incremental, keyed by file blake2b so warm runs skip
parsing entirely), links them into a :class:`~.graph.ProgramGraph`, and
runs the flow rules over the graph:

========================  ==============================================
``flow-layer-dag``        declared layer DAG (:data:`~.layers.REPRO_LAYERS`),
                          violations reported with the full import chain
``flow-obs-isolation``    observed layers must not import ``repro.obs``
``flow-sim-purity``       kernel package imports only its substrate
                          allowlist at module level (compiled lane)
``flow-broker-factory``   driver code builds brokers via ``make_broker``
``flow-cache-key``        every config field reachable from ``run_cell``
                          is represented in the cell cache key
``flow-worker-purity``    no module-global writes reachable from
                          process-pool / conveyor worker entry points
``flow-protocol-drift``   implementer signatures match the Protocol
========================  ==============================================

All layering policy lives in one :class:`~.layers.LayerMap` declaration;
the old hand-written ``obs-direct-import`` / ``broker-factory`` /
``compiled-lane-purity`` rule classes are subsumed by it as data.

Entry point: :func:`run_flows` (wired to ``repro lint --flows``).
"""

from __future__ import annotations

from .engine import (FLOW_RULES, FlowReport, FlowRule, flow_rules_by_id,
                     run_flows)
from .graph import FlowStats, ModuleSummary, ProgramGraph, build_graph
from .layers import REPRO_LAYERS, LayerMap

__all__ = [
    "FLOW_RULES",
    "FlowReport",
    "FlowRule",
    "FlowStats",
    "LayerMap",
    "ModuleSummary",
    "ProgramGraph",
    "REPRO_LAYERS",
    "build_graph",
    "flow_rules_by_id",
    "run_flows",
]
