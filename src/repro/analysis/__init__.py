"""Static analysis (simlint) and the runtime lifecycle sanitizer.

Two enforcement layers for the reproduction's determinism contract:

* :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — **simlint**,
  an AST linter with simulation-specific rules (``repro lint``);
* :mod:`repro.analysis.sanitizer` — the runtime leak/lifecycle checker
  behind ``Environment(sanitize=True)``.

This package sits *above* :mod:`repro.sim` in the layering: the kernel
only ever imports it lazily (and only when sanitizing is requested), so
``import repro.sim`` stays dependency-free.
"""

from .engine import (
    Finding,
    Rule,
    findings_to_json,
    lint_file,
    lint_paths,
    lint_source,
    render_findings,
)
from .rules import ALL_RULES, rules_by_id
from .sanitizer import (
    Leak,
    LeakError,
    Sanitizer,
    SanitizerAudit,
    SanitizerReport,
    sanitize_all,
)

__all__ = [
    "ALL_RULES",
    "Finding",
    "Leak",
    "LeakError",
    "Rule",
    "Sanitizer",
    "SanitizerAudit",
    "SanitizerReport",
    "findings_to_json",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_findings",
    "rules_by_id",
    "sanitize_all",
]
