"""simlint — the rule engine.

A small AST-based linter with simulation-specific rules.  The golden-job
determinism contract ("every render is byte-identical across serial,
``--parallel N``, and cache-served runs") is enforced *after the fact* by
output diffs; simlint moves enforcement to PR time by recognising the
hazard classes that have historically broken it — unordered-set
iteration, unseeded randomness, wall-clock reads, raw ``env.timeout``
churn loops, direct kernel-queue manipulation, and swallowed failures.

Architecture
------------
* A :class:`Rule` declares the AST node types it wants
  (:attr:`Rule.node_types`) and a :meth:`Rule.check` hook.
* :class:`LintContext` is the per-file walk state handed to every check:
  source lines, enclosing function/class/loop stacks, and
  :meth:`LintContext.report` to emit a :class:`Finding`.
* One walk per file: :class:`_Walker` dispatches each visited node to
  the rules registered for its type, maintaining the stacks as it
  recurses.
* Suppressions are comment-driven (mirroring the familiar linter idiom)::

      x = hash(obj)          # simlint: disable=id-hash-order -- why it is ok
      # simlint: disable-file=kernel-queue-push -- this file IS the kernel

  A line-level ``disable`` silences the named rules (or ``all``) for
  findings reported *on that physical line*; a ``disable-file``
  directive, wherever it appears, silences them for the whole file.
  Everything after ``--`` is a free-form justification (encouraged).

Output is both human-oriented (``path:line:col [rule] message``) and
machine-oriented (:func:`findings_to_json`), and the whole pass is
deterministic: files are visited in sorted order and findings are sorted
by (path, line, col, rule).
"""

from __future__ import annotations

import ast
import json
import os
import re
import sys
from dataclasses import dataclass, field
from typing import (Dict, Iterable, List, Optional, Sequence, Set, TextIO,
                    Tuple, Type)

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "collect_files",
    "findings_to_json",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_findings",
]

#: Matches ``simlint: disable[-file]=<rules>`` with an optional
#: free-form ``-- reason`` tail.
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    category: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "category": self.category,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"[{self.rule}] {self.message}")


class Rule:
    """Base class for simlint rules.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`check` is called once for every visited node whose type is in
    :attr:`node_types` and reports violations through
    :meth:`LintContext.report`.
    """

    #: Stable rule identifier used in reports and suppression comments.
    id: str = "abstract"
    #: ``determinism`` or ``kernel`` (used for grouping in reports/docs).
    category: str = "generic"
    #: One-line description (surfaced by ``repro lint --list-rules``).
    summary: str = ""
    #: AST node classes this rule wants to inspect.
    node_types: Tuple[Type[ast.AST], ...] = ()
    #: Relative-path suffixes exempt from this rule (built-in allowlist,
    #: e.g. ``sim/rng.py`` for the unseeded-random rule).
    exempt_suffixes: Tuple[str, ...] = ()

    def check(self, node: ast.AST, ctx: "LintContext") -> None:
        raise NotImplementedError

    def applies_to(self, relpath: str) -> bool:
        norm = relpath.replace(os.sep, "/")
        return not any(norm.endswith(sfx) for sfx in self.exempt_suffixes)


@dataclass
class _Suppressions:
    """Parsed suppression directives for one file.

    ``directives`` keeps the raw parsed entries — ``(line, scope,
    rules)`` with scope ``"disable"`` or ``"disable-file"`` — so the
    suppression audit (``repro lint --audit-suppressions``) can match
    each pragma against the findings it actually silenced.
    """

    file_level: Set[str] = field(default_factory=set)
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    directives: List[Tuple[int, str, Tuple[str, ...]]] = field(
        default_factory=list)

    def active(self, rule_id: str, line: int) -> bool:
        if "all" in self.file_level or rule_id in self.file_level:
            return True
        rules = self.by_line.get(line)
        return rules is not None and ("all" in rules or rule_id in rules)


def _comment_lines(lines: Sequence[str]) -> Optional[Set[int]]:
    """Line numbers carrying a real ``#`` comment token.

    Distinguishes live directives from pragma-*shaped* text inside
    docstrings and string literals (rule documentation, test sources),
    which must neither suppress anything nor count in the audit.
    Returns None when tokenisation fails (the caller then falls back to
    honouring every matching line — over-suppressing beats silently
    dropping a real pragma in a file the tokenizer chokes on).
    """
    import io
    import tokenize
    found: Set[int] = set()
    try:
        reader = io.StringIO("\n".join(lines) + "\n").readline
        for tok in tokenize.generate_tokens(reader):
            if tok.type == tokenize.COMMENT:
                found.add(tok.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError,
            ValueError):
        return None
    return found


def _parse_suppressions(lines: Sequence[str]) -> _Suppressions:
    sup = _Suppressions()
    comments = _comment_lines(lines)
    for lineno, line in enumerate(lines, start=1):
        if "simlint" not in line:
            continue
        if comments is not None and lineno not in comments:
            continue
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        # Cut the free-form justification tail ("rule-a -- why"): the
        # character class admits hyphens and spaces, so a comma-bearing
        # reason would otherwise leak extra pseudo-rule tokens.
        rules = set()
        for token in match.group("rules").split("--", 1)[0].split(","):
            token = token.strip()
            if token:
                rules.add(token.split()[0])
        if not rules:
            continue
        if match.group("scope") == "disable-file":
            sup.file_level |= rules
        else:
            sup.by_line.setdefault(lineno, set()).update(rules)
        sup.directives.append(
            (lineno, match.group("scope"), tuple(sorted(rules))))
    return sup


class LintContext:
    """Per-file state shared by all rules during one AST walk."""

    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.findings: List[Finding] = []
        #: Findings silenced by a suppression directive (audit fodder).
        self.suppressed: List[Finding] = []
        #: Enclosing ``FunctionDef``/``AsyncFunctionDef`` nodes, outermost
        #: first.  ``func_stack[-1]`` is the current function.
        self.func_stack: List[ast.AST] = []
        #: Enclosing ``ClassDef`` nodes, outermost first.
        self.class_stack: List[ast.ClassDef] = []
        #: Number of enclosing ``for``/``while`` loops in the *current
        #: function* (reset at function boundaries).
        self.loop_depth = 0
        self._suppressions = _parse_suppressions(self.lines)

    # -- introspection helpers used by rules -----------------------------
    @property
    def current_function(self) -> Optional[ast.AST]:
        return self.func_stack[-1] if self.func_stack else None

    @property
    def current_function_name(self) -> Optional[str]:
        func = self.current_function
        return getattr(func, "name", None) if func is not None else None

    @property
    def in_loop(self) -> bool:
        return self.loop_depth > 0

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # -- reporting -------------------------------------------------------
    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        finding = Finding(
            rule=rule.id, category=rule.category, path=self.relpath,
            line=line, col=col, message=message,
            snippet=self.line_at(line))
        if self._suppressions.active(rule.id, line):
            self.suppressed.append(finding)
            return
        self.findings.append(finding)


class _Walker(ast.NodeVisitor):
    """Single-pass AST walker maintaining the context stacks and
    dispatching nodes to the rules registered for their type."""

    def __init__(self, rules: Sequence[Rule], ctx: LintContext) -> None:
        self.ctx = ctx
        self.dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in rules:
            if not rule.applies_to(ctx.relpath):
                continue
            for node_type in rule.node_types:
                self.dispatch.setdefault(node_type, []).append(rule)

    # generic dispatch ---------------------------------------------------
    def visit(self, node: ast.AST) -> None:
        for rule in self.dispatch.get(type(node), ()):
            rule.check(node, self.ctx)
        self._descend(node)

    def _descend(self, node: ast.AST) -> None:
        ctx = self.ctx
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            ctx.func_stack.append(node)
            saved_depth, ctx.loop_depth = ctx.loop_depth, 0
            self.generic_visit(node)
            ctx.loop_depth = saved_depth
            ctx.func_stack.pop()
        elif isinstance(node, ast.ClassDef):
            ctx.class_stack.append(node)
            self.generic_visit(node)
            ctx.class_stack.pop()
        elif isinstance(node, (ast.For, ast.While, ast.AsyncFor)):
            ctx.loop_depth += 1
            self.generic_visit(node)
            ctx.loop_depth -= 1
        else:
            self.generic_visit(node)

    def generic_visit(self, node: ast.AST) -> None:
        # NodeVisitor.generic_visit calls self.visit on children, which is
        # exactly the dispatch we want; keep the default behaviour.
        super().generic_visit(node)


def lint_source(source: str, relpath: str,
                rules: Sequence[Rule]) -> List[Finding]:
    """Lint one source string; returns sorted findings."""
    ctx = LintContext(relpath, source)
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        ctx.findings.append(Finding(
            rule="syntax-error", category="parse", path=relpath,
            line=exc.lineno or 1, col=exc.offset or 0,
            message=f"file does not parse: {exc.msg}"))
        return ctx.findings
    _Walker(rules, ctx).visit(tree)
    ctx.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return ctx.findings


def lint_file(path: str, rules: Sequence[Rule],
              root: Optional[str] = None) -> List[Finding]:
    """Lint one file; ``root`` anchors the relative path in reports."""
    relpath = os.path.relpath(path, root) if root else path
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, relpath, rules)


def collect_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a deterministic sorted ``.py`` list."""
    out: Set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git"))
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.add(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            out.add(path)
    return sorted(out)


def lint_paths(paths: Iterable[str], rules: Sequence[Rule],
               root: Optional[str] = None) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (deterministic order)."""
    findings: List[Finding] = []
    for path in collect_files(paths):
        findings.extend(lint_file(path, rules, root=root))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


@dataclass
class FileLintResult:
    """Per-file lint outcome with suppression detail (for the audit)."""

    relpath: str
    findings: List[Finding]
    suppressed: List[Finding]
    suppressions: _Suppressions


def lint_files_detailed(files: Sequence[str], rules: Sequence[Rule],
                        root: Optional[str] = None) -> List[FileLintResult]:
    """Like :func:`lint_paths` over explicit files, keeping per-file
    suppression state so ``--audit-suppressions`` can match directives
    against the findings they silenced."""
    out: List[FileLintResult] = []
    for path in files:
        relpath = os.path.relpath(path, root) if root else path
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        ctx = LintContext(relpath, source)
        try:
            tree = ast.parse(source, filename=relpath)
        except SyntaxError as exc:
            ctx.findings.append(Finding(
                rule="syntax-error", category="parse", path=relpath,
                line=exc.lineno or 1, col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}"))
        else:
            _Walker(rules, ctx).visit(tree)
        ctx.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        out.append(FileLintResult(
            relpath=relpath, findings=ctx.findings,
            suppressed=ctx.suppressed, suppressions=ctx._suppressions))
    return out


# -- output -------------------------------------------------------------
def render_findings(findings: Sequence[Finding],
                    stream: Optional[TextIO] = None) -> None:
    """Human-oriented report (one line per finding + summary)."""
    stream = stream if stream is not None else sys.stdout
    for finding in findings:
        print(finding.render(), file=stream)
        if finding.snippet:
            print(f"    {finding.snippet}", file=stream)
    count = len(findings)
    rules = sorted({f.rule for f in findings})
    if count:
        print(f"simlint: {count} finding(s) across {len(rules)} rule(s): "
              f"{', '.join(rules)}", file=stream)
    else:
        print("simlint: clean", file=stream)


def findings_to_json(findings: Sequence[Finding], *,
                     checked_files: int = 0,
                     rule_ids: Sequence[str] = ()) -> str:
    """Machine-oriented report (stable key order, sorted findings)."""
    payload = {
        "tool": "simlint",
        "checked_files": checked_files,
        "rules": list(rule_ids),
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=False)
