"""Runtime event/lifecycle sanitizer for the simulation kernel.

``Environment(sanitize=True)`` attaches a :class:`Sanitizer` to the
environment.  The kernel then reports, at ``run()`` exit (and on demand
through :meth:`Sanitizer.report`), the lifecycle hazards that static
analysis cannot see:

* **pending-timer** — a non-daemon :class:`~repro.sim.timers.Timer`
  still armed when the run ended (the PR 3 leak class: a churn site that
  re-armed its timer and never cancelled it on shutdown);
* **orphan-event** — a queue entry whose event was triggered but never
  processed (scheduled work silently cut off);
* **alive-process** — a non-daemon process whose generator never
  terminated (stuck on an event that will never fire, or an unbounded
  service loop that should be marked ``daemon=True``);
* **unhandled-failure** — an event that was failed with *no* registered
  callbacks and was neither processed nor defused: the failure would
  have been raised had the run reached it, or silently lost otherwise.

Daemon semantics mirror threads: service loops that intentionally live
for the whole simulation (MDS refresh, LRMS scheduling cycles,
fair-share sampling) are created with ``daemon=True`` and are exempt
from leak reporting.  Everything else is expected to wind down.

The hooks cost nothing when sanitizing is off: ``env.sanitizer`` is
``None`` and the kernel's hot paths never consult it — only the *cold*
construction/failure paths (``Process.__init__``, ``Timer.__init__``,
``Event.fail``) carry an ``is not None`` check.

Tests can audit whole scenario builds without threading a flag through
every constructor::

    with sanitize_all() as audit:
        run_fig8(config)
    audit.assert_clean()
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..sim.environment import Environment
    from ..sim.events import Event
    from ..sim.process import Process
    from ..sim.timers import Timer

__all__ = ["Leak", "LeakError", "Sanitizer", "SanitizerAudit",
           "SanitizerReport", "sanitize_all"]


class LeakError(AssertionError):
    """Raised by :meth:`Sanitizer.assert_clean` when leaks were found."""


@dataclass(frozen=True)
class Leak:
    """One lifecycle finding."""

    #: ``pending-timer`` | ``orphan-event`` | ``alive-process`` |
    #: ``unhandled-failure``.
    kind: str
    #: Human-oriented description of the leaked object.
    what: str
    #: Extra structured detail (deadline, target, sim time, ...).
    detail: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        extra = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.kind}] {self.what}" + (f" ({extra})" if extra else "")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "what": self.what, "detail": self.detail}


@dataclass
class SanitizerReport:
    """Structured result of one sanitizer scan."""

    #: Simulation time at which the scan ran.
    at: float
    leaks: List[Leak] = field(default_factory=list)
    #: Non-leak statistics (tombstones collected, daemons exempted, ...).
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.leaks

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for leak in self.leaks:
            counts[leak.kind] = counts.get(leak.kind, 0) + 1
        return counts

    def render(self) -> str:
        head = f"sanitizer report at t={self.at:.6f}: "
        if self.clean:
            return head + "clean"
        lines = [head + f"{len(self.leaks)} leak(s)"]
        lines.extend("  " + leak.render() for leak in self.leaks)
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "at": self.at,
            "clean": self.clean,
            "leaks": [leak.to_dict() for leak in self.leaks],
            "stats": self.stats,
        }, indent=2)


class Sanitizer:
    """Lifecycle tracker attached to one :class:`Environment`.

    Tracks processes, timers, and failed events by strong reference —
    sanitize mode is opt-in diagnostics, and the kernel's event classes
    are ``__slots__``-packed without a ``__weakref__`` slot precisely so
    the *production* configuration stays lean.  Leak classification never
    depends on liveness (a finished process or disarmed timer is simply
    not reported), so strong tracking cannot mask or invent leaks; it
    only bounds sanitized runs' memory by the number of processes,
    timers, and failures, which is fine for test workloads.
    """

    def __init__(self, env: "Environment") -> None:
        # Strong reference: the env <-> sanitizer cycle is gc-collectable,
        # and audit scopes must still be able to scan environments whose
        # builder scope has already returned.  (Tracked *objects* stay
        # weak so tracking never changes what leaks.)
        self._env: Optional["Environment"] = env
        self._processes: List["Process"] = []
        self._timers: List["Timer"] = []
        #: (event, had_callbacks_at_fail, sim time of the fail).
        self._failures: List[Tuple["Event", bool, float]] = []
        #: Report captured automatically at the last ``run()`` exit.
        self.last_report: Optional[SanitizerReport] = None
        audit = _ACTIVE_AUDIT
        if audit is not None:
            audit._register(self)

    # -- kernel hooks (cold paths only) ----------------------------------
    def track_process(self, process: "Process") -> None:
        self._processes.append(process)

    def track_timer(self, timer: "Timer") -> None:
        self._timers.append(timer)

    def note_failure(self, event: "Event") -> None:
        env = self._env
        now = env._now if env is not None else 0.0
        self._failures.append((event, bool(event.callbacks), now))

    def on_run_exit(self) -> None:
        """Called by ``Environment.run()`` when the run loop exits."""
        self.last_report = self.report()

    # -- scanning --------------------------------------------------------
    def report(self) -> SanitizerReport:
        """Scan the environment *now* and return a fresh report."""
        env = self._env
        if env is None:  # pragma: no cover - defensive
            return SanitizerReport(at=0.0)
        report = SanitizerReport(at=env._now)
        leaks = report.leaks
        stats = {"queue_entries": 0, "timer_tombstones": 0,
                 "daemons_exempt": 0}

        # 1. queue residue: pending timers and orphan events.
        for entry in self._queue_entries(env):
            stats["queue_entries"] += 1
            time_, _prio, eid, event = entry
            if event._is_timer:
                # A timer remembers at most one live shot, so at most one
                # queue entry can match ``_shot_eid`` — no dedup needed;
                # every other entry for the same timer is a tombstone.
                if eid != event._shot_eid or event._deadline is None:
                    stats["timer_tombstones"] += 1
                    continue
                if getattr(event, "daemon", False):
                    stats["daemons_exempt"] += 1
                    continue
                leaks.append(Leak(
                    kind="pending-timer",
                    what=f"timer {event.name or '<unnamed>'} still armed",
                    detail={"deadline": event._deadline, "shot_at": time_}))
            else:
                if getattr(event, "daemon", False) \
                        or self._daemon_owned(event):
                    stats["daemons_exempt"] += 1
                    continue
                leaks.append(Leak(
                    kind="orphan-event",
                    what=f"{_describe(event)} scheduled but never "
                         f"processed",
                    detail={"scheduled_for": time_, "eid": eid}))

        # 2. processes that never terminated.
        for process in self._processes:
            if not process.is_alive:
                continue
            if process.daemon:
                stats["daemons_exempt"] += 1
                continue
            target = process.target
            leaks.append(Leak(
                kind="alive-process",
                what=f"process {process.name!r} never terminated",
                detail={"waiting_on": _describe(target)
                        if target is not None else "nothing (running)"}))

        # 3. failed events nobody ever observed.
        for event, had_callbacks, failed_at in self._failures:
            if had_callbacks or event._defused:
                continue
            if event.callbacks is None:
                # Processed: run() either raised or a late callback
                # handled it; not a silent loss.
                continue
            leaks.append(Leak(
                kind="unhandled-failure",
                what=f"{_describe(event)} failed with no callbacks and "
                     f"was never defused",
                detail={"failed_at": failed_at,
                        "error": repr(event._value)}))

        report.stats = stats
        return report

    def _daemon_owned(self, event: Any, depth: int = 0) -> bool:
        """True when no waiter of *event* still needs it at run end.

        A queue entry is exempt from the orphan report when every one of
        its callbacks either

        * resumes **daemon machinery** — the service loop that scheduled
          it is itself exempt, so its pending wake-ups are too; or
        * belongs to an **already-resolved event** — the loser branch of
          an ``AnyOf``: the kernel detaches condition children *lazily*
          (see :mod:`repro.sim.events`), so the losing timeout stays
          scheduled and its ``_check`` no-ops when it eventually pops.
          That entry is kernel bookkeeping, not cut-off work.

        An event with *no* callbacks is never exempt — nobody is
        waiting, which is exactly the orphan case.
        """
        from ..sim.events import PENDING

        if depth > 8:  # defensive: conditions never nest this deep
            return False
        callbacks = getattr(event, "callbacks", None)
        if not callbacks:
            return False
        for cb in callbacks:
            # Waiters register either a bound method (``Condition._check``)
            # or a callable object itself (the kernel registers the
            # ``Process`` directly as its resume callback).
            owner = getattr(cb, "__self__", cb)
            daemon = getattr(owner, "daemon", None)
            if daemon:
                continue
            if daemon is None:
                # Conditions (AllOf/AnyOf) carry no daemon flag of their
                # own.  Resolved ones no longer need this wake-up (lazy
                # detach); pending ones are attributed through to
                # whoever waits on the condition.
                if getattr(owner, "_value", PENDING) is not PENDING:
                    continue
                if self._daemon_owned(owner, depth + 1):
                    continue
            return False
        return True

    @staticmethod
    def _queue_entries(env: "Environment") -> Iterator[Tuple]:
        for entry in env._urgent:
            yield entry
        for entry in env._fifo:
            yield entry
        for entry in env._heap:
            yield entry

    # -- assertions ------------------------------------------------------
    def assert_clean(self) -> SanitizerReport:
        """Fresh scan; raises :class:`LeakError` when anything leaked."""
        report = self.report()
        if not report.clean:
            raise LeakError(report.render())
        return report


def _describe(obj: Any) -> str:
    """Short stable-ish description of an event (class + name if any)."""
    name = getattr(obj, "name", None)
    cls = type(obj).__name__
    return f"{cls}({name})" if name else cls


# -- audit scope: sanitize every Environment built inside a `with` -------
_ACTIVE_AUDIT: Optional["SanitizerAudit"] = None


class SanitizerAudit:
    """Collects the sanitizers of every Environment built in scope."""

    def __init__(self) -> None:
        self._sanitizers: List[Sanitizer] = []

    def _register(self, sanitizer: Sanitizer) -> None:
        self._sanitizers.append(sanitizer)

    @property
    def environments(self) -> int:
        return len(self._sanitizers)

    def reports(self) -> List[SanitizerReport]:
        """Fresh scan of every audited environment (final state)."""
        return [s.report() for s in self._sanitizers]

    def leaks(self) -> List[Leak]:
        out: List[Leak] = []
        for report in self.reports():
            out.extend(report.leaks)
        return out

    def assert_clean(self) -> None:
        reports = self.reports()
        dirty = [r for r in reports if not r.clean]
        if dirty:
            raise LeakError("\n".join(r.render() for r in dirty))


@contextmanager
def sanitize_all() -> Iterator[SanitizerAudit]:
    """Audit scope: every Environment constructed inside is sanitized.

    Flips :attr:`Environment.default_sanitize` for the duration, so
    scenario builders and experiments need no plumbing; nesting is not
    supported (the inner scope would steal the outer's environments).
    """
    global _ACTIVE_AUDIT
    from ..sim.environment import Environment

    if _ACTIVE_AUDIT is not None:
        raise RuntimeError("sanitize_all() scopes do not nest")
    audit = SanitizerAudit()
    _ACTIVE_AUDIT = audit
    saved = Environment.default_sanitize
    Environment.default_sanitize = True
    try:
        yield audit
    finally:
        Environment.default_sanitize = saved
        _ACTIVE_AUDIT = None
