"""Kernel-invariant rules.

The two-lane event kernel (``sim/environment.py``) documents three
scheduling invariants its direct producers must observe, plus the Timer
shot protocol.  These rules catch the ways higher layers have
historically violated them: raw ``env.timeout`` re-armed in churn loops
(the PR 3 leak class), ad-hoc pushes into the kernel queues, events
triggered during construction, and silently swallowed failures.
"""

from __future__ import annotations

import ast
from typing import Optional, Tuple, Type

from ..engine import LintContext, Rule

__all__ = [
    "BareExceptRule",
    "KernelQueuePushRule",
    "RawTimeoutLoopRule",
    "SwallowedErrorRule",
    "TriggerInInitRule",
]

#: Files that *are* the kernel: they own the queue structures and may
#: manipulate them directly (they still carry ``disable-file`` markers so
#: the exemption is visible in the source, but the built-in allowlist
#: keeps the rule meaningful even if a marker is lost).
_KERNEL_FILES = (
    "sim/environment.py", "sim/events.py", "sim/timers.py", "sim/process.py",
)


def _receiver_name(node: ast.AST) -> Optional[str]:
    """``env._heap`` -> ``"env"``; ``self._heap`` -> ``"self"``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return node.value.id
    return None


class RawTimeoutLoopRule(Rule):
    """Raw ``env.timeout(...)`` armed inside a loop.

    Each ``timeout`` allocates a fresh event and (for positive delays) a
    fresh heap entry; re-armed every cycle it reproduces exactly the
    timer-churn garbage PR 3 removed, and racing it against a wakeup
    (``yield timeout | kick``) leaks a dead condition per cycle.  Churn
    sites must use the re-armable :class:`repro.sim.timers.Timer`.
    Bounded waits that genuinely want a fresh one-shot event can suppress
    with a justification.
    """

    id = "raw-timeout-loop"
    category = "kernel"
    summary = ("env.timeout() re-armed inside a loop — churn sites must "
               "use a re-armable sim.timers.Timer")
    node_types: Tuple[Type[ast.AST], ...] = (ast.Call,)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "timeout"):
            return
        if not ctx.in_loop:
            return
        ctx.report(self, node,
                   "raw .timeout() inside a loop allocates one event per "
                   "cycle — use a re-armable sim.timers.Timer "
                   "(timer.arm/restart)")


class KernelQueuePushRule(Rule):
    """Direct manipulation of the kernel's queue structures.

    Only the kernel files may push into ``_heap``/``_fifo``/``_urgent``
    or bump ``_eid`` on another object; anyone else doing so bypasses the
    scheduling invariants (eid monotonicity, lane/priority routing,
    timer-free lanes) and silently corrupts the deterministic total
    order.  Go through ``Environment.schedule`` / event ``succeed`` /
    ``Timer.arm``.
    """

    id = "kernel-queue-push"
    category = "kernel"
    summary = ("direct push into the kernel queues outside sim/ — use "
               "Environment.schedule or event triggers")
    node_types: Tuple[Type[ast.AST], ...] = (ast.Call, ast.Assign)
    exempt_suffixes = _KERNEL_FILES

    _QUEUES = ("_heap", "_fifo", "_urgent")

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if isinstance(node, ast.Call):
            func = node.func
            # heappush(X._heap, ...) / heapq.heappush(X._heap, ...)
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in ("heappush", "heapify", "heappop") and node.args:
                target = node.args[0]
                if isinstance(target, ast.Attribute) \
                        and target.attr in self._QUEUES \
                        and _receiver_name(target) != "self":
                    ctx.report(self, node,
                               f"direct {name}() into a foreign kernel "
                               f"queue ({ast.unparse(target)}) — use "
                               f"Environment.schedule/Timer.arm")
            # X._fifo.append(...) / X._urgent.append(...)
            if isinstance(func, ast.Attribute) \
                    and func.attr in ("append", "appendleft") \
                    and isinstance(func.value, ast.Attribute) \
                    and func.value.attr in self._QUEUES \
                    and _receiver_name(func.value) != "self":
                ctx.report(self, node,
                           f"direct append to a foreign kernel lane "
                           f"({ast.unparse(func.value)}) — use "
                           f"Environment.schedule or an event trigger")
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) \
                        and target.attr == "_eid" \
                        and _receiver_name(target) != "self":
                    ctx.report(self, node,
                               "writing a foreign Environment's _eid "
                               "breaks insertion-id monotonicity — only "
                               "the kernel may allocate eids")


class TriggerInInitRule(Rule):
    """``succeed``/``fail``/``trigger`` called inside ``__init__``.

    Triggering an event while its constructor is still running schedules
    it before any caller had a chance to register callbacks or even see
    the object — the classic lost-wakeup constructor bug (the kernel's
    own flattened constructors are the audited exception and carry
    explicit suppressions).
    """

    id = "trigger-in-init"
    category = "kernel"
    summary = ("Event.succeed/fail/trigger inside __init__ fires before "
               "any caller can register a callback")
    node_types: Tuple[Type[ast.AST], ...] = (ast.Call,)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in ("succeed", "fail", "trigger")):
            return
        if ctx.current_function_name != "__init__":
            return
        ctx.report(self, node,
                   f".{func.attr}() during __init__ triggers the event "
                   f"before callers can register callbacks — trigger "
                   f"after construction")


class BareExceptRule(Rule):
    """Bare ``except:`` handlers.

    A bare except swallows ``StopSimulation``, ``KeyboardInterrupt`` and
    every kernel control-flow exception alike; the kernel's failure
    propagation (undefused failures must surface from ``run()``) cannot
    work underneath one.
    """

    id = "bare-except"
    category = "kernel"
    summary = "bare except: swallows kernel control-flow exceptions"
    node_types: Tuple[Type[ast.AST], ...] = (ast.ExceptHandler,)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            ctx.report(self, node,
                       "bare except: catches StopSimulation/"
                       "KeyboardInterrupt too — name the exception "
                       "types")


class SwallowedErrorRule(Rule):
    """Broad exception handlers whose body silently discards the error.

    ``except Exception: pass`` (or catching ``SimulationError`` and
    dropping it) turns a failed event into silence — the exact failure
    mode the sanitizer's *unhandled-failure* check exists for, but
    introduced statically.  Handle, log, or re-raise.
    """

    id = "swallowed-error"
    category = "kernel"
    summary = ("except <broad/SimError>: pass silently discards "
               "failures — handle or re-raise")
    node_types: Tuple[Type[ast.AST], ...] = (ast.ExceptHandler,)

    _BROAD = ("Exception", "BaseException", "SimulationError", "SimError")

    def _caught_names(self, node: ast.ExceptHandler) -> Tuple[str, ...]:
        types = []
        spec = node.type
        items = spec.elts if isinstance(spec, ast.Tuple) else [spec]
        for item in items:
            if isinstance(item, ast.Name):
                types.append(item.id)
            elif isinstance(item, ast.Attribute):
                types.append(item.attr)
        return tuple(types)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            return  # bare-except rule owns this case
        caught = self._caught_names(node)
        if not any(name in self._BROAD for name in caught):
            return
        body = node.body
        swallowed = all(
            isinstance(stmt, (ast.Pass, ast.Continue)) or
            (isinstance(stmt, ast.Expr)
             and isinstance(stmt.value, ast.Constant))
            for stmt in body)
        if swallowed:
            ctx.report(self, node,
                       f"except {'/'.join(caught)}: with a pass-only body "
                       f"swallows the failure — handle, log, or re-raise")
