"""Determinism-hazard rules.

Everything here protects the byte-identical-render contract: any value
that depends on the interpreter's hash seed, the wall clock, object
identity, or global (unseeded) RNG state must never reach simulation
state or rendered output.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple, Type

from ..engine import LintContext, Rule

__all__ = [
    "EnvironReadRule",
    "IdHashOrderRule",
    "SetIterationRule",
    "UnseededRandomRule",
    "WallClockRule",
]


def _call_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ``("a", "b", "c")``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _is_set_expr(node: ast.AST) -> bool:
    """True for expressions that evaluate to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
        # set algebra: ``seen - done``, ``a | b`` … only flag when one
        # side is *syntactically* a set (dict/int operands use the same
        # operators; we only claim the unambiguous cases).
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class SetIterationRule(Rule):
    """Iteration over an unordered set where the order can escape.

    ``for s in set(...)``, ``[f(x) for x in {a, b}]``, ``list(set(...))``
    and friends iterate in hash order, which depends on
    ``PYTHONHASHSEED`` for str/bytes elements and on allocation addresses
    for objects — the classic way a scheduling decision silently becomes
    run-dependent.  Sort first: ``for s in sorted(set(...))``.
    """

    id = "set-iteration"
    category = "determinism"
    summary = ("iterating an unordered set lets hash order escape into "
               "scheduling — wrap it in sorted()")
    node_types: Tuple[Type[ast.AST], ...] = (
        ast.For, ast.comprehension, ast.Call)

    _ORDER_SINKS = ("list", "tuple", "enumerate", "iter", "reversed")

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if isinstance(node, ast.For):
            if _is_set_expr(node.iter):
                ctx.report(self, node.iter,
                           "iteration over an unordered set — order is "
                           "hash-seed dependent; iterate sorted(...) "
                           "instead")
        elif isinstance(node, ast.comprehension):
            if _is_set_expr(node.iter):
                ctx.report(self, node.iter,
                           "comprehension over an unordered set — order is "
                           "hash-seed dependent; iterate sorted(...) "
                           "instead")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name) and func.id in self._ORDER_SINKS
                    and node.args and _is_set_expr(node.args[0])):
                ctx.report(self, node,
                           f"{func.id}() materialises an unordered set in "
                           f"hash order — use sorted(...) to fix the order")


class UnseededRandomRule(Rule):
    """Module-level ``random`` / ``numpy.random`` draws outside the
    seeded-stream facade.

    All stochastic draws must come from named
    :class:`repro.sim.rng.RandomStreams` substreams; the global
    ``random``/``np.random`` state is process-wide, unseeded (or seeded
    once for everyone), and makes draws order-dependent across
    components.
    """

    id = "unseeded-random"
    category = "determinism"
    summary = ("global random/numpy.random draw outside sim/rng.py — use "
               "a named RandomStreams substream")
    node_types: Tuple[Type[ast.AST], ...] = (ast.Call,)
    exempt_suffixes = ("sim/rng.py",)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Call)
        chain = _call_chain(node.func)
        if chain is None:
            return
        if chain[0] == "random" and len(chain) == 2:
            ctx.report(self, node,
                       f"module-level random.{chain[1]}() draws from the "
                       f"process-global RNG — use a RandomStreams "
                       f"substream")
        elif chain[:2] in (("np", "random"), ("numpy", "random")):
            ctx.report(self, node,
                       f"{'.'.join(chain)}() uses numpy's global RNG — "
                       f"use a RandomStreams substream")


class WallClockRule(Rule):
    """Wall-clock reads in simulation code.

    ``time.time()`` / ``datetime.now()`` values differ on every run; any
    such value reaching sim state or rendered output breaks the golden
    contract.  Simulated time is ``env.now``; host-side *duration*
    measurement should use ``time.perf_counter()`` (which this rule
    deliberately does not flag).
    """

    id = "wallclock"
    category = "determinism"
    summary = ("wall-clock read (time.time/datetime.now) — sim code must "
               "use env.now")
    node_types: Tuple[Type[ast.AST], ...] = (ast.Call,)

    _TIME_FUNCS = ("time", "monotonic", "clock", "time_ns", "monotonic_ns")
    _DATETIME_FUNCS = ("now", "utcnow", "today")

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Call)
        chain = _call_chain(node.func)
        if chain is None:
            return
        if chain[0] == "time" and len(chain) == 2 \
                and chain[1] in self._TIME_FUNCS:
            ctx.report(self, node,
                       f"time.{chain[1]}() reads the wall clock — use "
                       f"env.now for sim time (perf_counter for host "
                       f"durations)")
        elif chain[-1] in self._DATETIME_FUNCS and len(chain) >= 2 \
                and chain[-2] in ("datetime", "date"):
            ctx.report(self, node,
                       f"{'.'.join(chain)}() reads the wall clock — use "
                       f"env.now for sim time")


class IdHashOrderRule(Rule):
    """``id()`` / ``hash()`` in simulation logic.

    Both values vary across processes and hash seeds; using them for
    ordering, keys, or identifiers that reach sim state or output makes
    runs irreproducible.  Cosmetic ``__repr__``/``__str__`` uses are
    exempt (reprs never enter rendered experiment output).
    """

    id = "id-hash-order"
    category = "determinism"
    summary = ("id()/hash() values vary per process/hash seed — never "
               "let them order or key sim state")
    node_types: Tuple[Type[ast.AST], ...] = (ast.Call,)

    _COSMETIC_FUNCS = ("__repr__", "__str__", "__format__", "__hash__")

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        if not (isinstance(func, ast.Name) and func.id in ("id", "hash")):
            return
        if ctx.current_function_name in self._COSMETIC_FUNCS:
            return
        ctx.report(self, node,
                   f"{func.id}() is process/hash-seed dependent — derive "
                   f"stable identifiers (counters, names, blake2) instead")


class EnvironReadRule(Rule):
    """``os.environ`` / ``os.getenv`` reads outside config loading.

    Environment variables are per-host ambient state: a read anywhere
    but the CLI/config layer means two operators get different sim
    behaviour from the same config — the cache key and the golden output
    stop agreeing.  Plumb values through explicit config instead.
    """

    id = "environ-read"
    category = "determinism"
    summary = ("os.environ read outside config loading — plumb through "
               "explicit config")
    node_types: Tuple[Type[ast.AST], ...] = (ast.Attribute, ast.Call)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if isinstance(node, ast.Attribute):
            if node.attr == "environ" and isinstance(node.value, ast.Name) \
                    and node.value.id == "os":
                ctx.report(self, node,
                           "os.environ read — ambient host state; route "
                           "through the config layer")
        elif isinstance(node, ast.Call):
            chain = _call_chain(node.func)
            if chain == ("os", "getenv"):
                ctx.report(self, node,
                           "os.getenv read — ambient host state; route "
                           "through the config layer")
