"""Layering rules.

The observability stack (``repro.obs``) hangs off the environment as
optional hooks: ``env.tracer`` and ``env.telemetry`` are ``None`` unless
a scenario (or scope) installs them, and instrumented layers only ever
read the attribute::

    t = self.env.telemetry
    if t is not None:
        t.counter("broker.submits").inc()

That inversion is what keeps observability zero-cost when uninstalled
and keeps ``obs`` free to import every layer it observes without cycles.
A *direct* ``repro.obs`` import from an instrumented layer breaks both
properties at once, so the rule below enforces the boundary statically.
"""

from __future__ import annotations

import ast
import os
from typing import Tuple, Type

from ..engine import LintContext, Rule

__all__ = ["BrokerConstructionRule", "CompiledLanePurityRule",
           "ObsDirectImportRule"]


class CompiledLanePurityRule(Rule):
    """A ``repro.sim`` module imports outside the kernel's closure.

    The kernel package must stay self-contained: its compiled lane
    (``REPRO_SIM_COMPILED=1``) binds the pure-Python classes into a C
    extension at import time, and runner workers unpickle kernel state
    cold — both break (import cycles, lane divergence, heavyweight
    transitive imports in every worker) the moment ``repro.sim`` reaches
    *up* into broker/experiment/observability layers.  Module-level
    imports in ``repro/sim/`` may therefore only be intra-package
    relative imports or members of the frozen substrate allowlist
    (stdlib modules the kernel already leans on, plus numpy for the RNG
    spine).  Function-level imports are exempt: they are lazy by
    construction and cannot create import cycles at bind time.
    """

    id = "compiled-lane-purity"
    category = "layering"
    summary = ("repro/sim modules may import only intra-package relative "
               "modules or the kernel substrate allowlist at module "
               "level (compiled lane + worker-unpickle purity)")
    node_types: Tuple[Type[ast.AST], ...] = (ast.Import, ast.ImportFrom)

    #: Top-level modules the kernel substrate is allowed to lean on.
    _ALLOWED = frozenset({
        "__future__", "collections", "dataclasses", "enum", "functools",
        "heapq", "itertools", "math", "os", "types", "typing",
        "warnings", "weakref",
        # Not stdlib, but the RNG/monitor spine is built on it and it is
        # a hard dependency of the whole repro package.
        "numpy",
    })

    def applies_to(self, relpath: str) -> bool:
        parts = relpath.replace(os.sep, "/").split("/")
        return "sim" in parts

    def _violation(self, node: ast.AST, ctx: LintContext,
                   name: str) -> None:
        ctx.report(self, node,
                   f"module-level import of {name!r} from repro.sim — "
                   f"the kernel package must stay importable on its own "
                   f"(compiled lane binds at import; workers unpickle "
                   f"cold); use a relative intra-package import, move "
                   f"the import inside the function that needs it, or "
                   f"extend the substrate allowlist deliberately")

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if ctx.current_function is not None:
            return  # lazy: cannot participate in an import cycle
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top not in self._ALLOWED:
                    self._violation(node, ctx, alias.name)
            return
        assert isinstance(node, ast.ImportFrom)
        if node.level >= 1:
            return  # relative: intra-package by construction
        module = node.module or ""
        # Absolute self-imports (repro.sim[.x]) stay inside the package.
        if module == "repro.sim" or module.startswith("repro.sim."):
            return
        if module.split(".")[0] not in self._ALLOWED:
            self._violation(node, ctx, module)


class ObsDirectImportRule(Rule):
    """``repro.obs`` imported from an instrumented layer.

    ``core/``, ``streaming/``, ``multiprog/``, ``grid/`` and ``net/``
    are *observed* layers: they must reach observability exclusively
    through the ``env.tracer`` / ``env.telemetry`` hooks (``None`` when
    not installed), never by importing :mod:`repro.obs`.  Importing it
    directly inverts the dependency arrow (obs imports the layers it
    observes), reintroduces overhead for uninstrumented runs, and risks
    import cycles.
    """

    id = "obs-direct-import"
    category = "layering"
    summary = ("instrumented layers (core/streaming/multiprog/grid/net) "
               "must not import repro.obs — use the env.telemetry/"
               "env.tracer hooks")
    node_types: Tuple[Type[ast.AST], ...] = (ast.Import, ast.ImportFrom)

    #: Path segments marking the instrumented (observed) layers.
    _RESTRICTED = ("core", "streaming", "multiprog", "grid", "net")

    def applies_to(self, relpath: str) -> bool:
        parts = relpath.replace(os.sep, "/").split("/")
        return any(segment in parts for segment in self._RESTRICTED)

    def _report(self, node: ast.AST, ctx: LintContext, what: str) -> None:
        ctx.report(self, node,
                   f"{what} from an instrumented layer — read the "
                   f"env.telemetry/env.tracer hook instead "
                   f"(`t = env.telemetry` / `if t is not None:`)")

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                if name == "repro.obs" or name.startswith("repro.obs."):
                    self._report(node, ctx, f"import {name}")
            return
        assert isinstance(node, ast.ImportFrom)
        module = node.module or ""
        # Absolute: from repro.obs[.x] import ... / from repro import obs
        if module == "repro.obs" or module.startswith("repro.obs."):
            self._report(node, ctx, f"from {module} import ...")
            return
        if module == "repro" and any(a.name == "obs" for a in node.names):
            self._report(node, ctx, "from repro import obs")
            return
        # Relative: from ..obs[.x] import ... / from .. import obs
        if node.level >= 1:
            if module == "obs" or module.startswith("obs."):
                dots = "." * node.level
                self._report(node, ctx,
                             f"from {dots}{module} import ...")
            elif not module and any(a.name == "obs" for a in node.names):
                dots = "." * node.level
                self._report(node, ctx, f"from {dots} import obs")


class BrokerConstructionRule(Rule):
    """A broker class constructed directly from experiment/example code.

    The three broker implementations share one protocol surface but have
    mode-specific wiring obligations (the pull broker needs a site agent
    per site, the data-aware broker a replica catalog).  Experiment and
    example code must therefore construct brokers through
    :func:`repro.core.make_broker` (or ``Scenario(broker_mode=...)``)
    which performs that wiring and validates the mode/config pairing;
    ``CrossBroker(...)`` called directly bypasses both and silently pins
    the cell to push-mode semantics.
    """

    id = "broker-factory"
    category = "layering"
    summary = ("experiments/examples must build brokers via make_broker "
               "or Scenario(broker_mode=...), never by calling a broker "
               "class directly")
    node_types: Tuple[Type[ast.AST], ...] = (ast.Call,)

    #: Path segments marking driver-level code (not the core layer, which
    #: legitimately instantiates its own classes, e.g. in make_broker).
    _RESTRICTED = ("experiments", "examples")
    _BROKER_CLASSES = frozenset(
        {"CrossBroker", "PullBroker", "DataAwareBroker"})

    def applies_to(self, relpath: str) -> bool:
        parts = relpath.replace(os.sep, "/").split("/")
        return any(segment in parts for segment in self._RESTRICTED)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        else:
            return
        if name in self._BROKER_CLASSES:
            ctx.report(self, node,
                       f"{name}(...) constructed directly — use "
                       f"make_broker(..., mode=...) or "
                       f"Scenario(broker_mode=...) so mode wiring and "
                       f"config validation run")
