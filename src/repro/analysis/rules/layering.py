"""Layering rules.

The observability stack (``repro.obs``) hangs off the environment as
optional hooks: ``env.tracer`` and ``env.telemetry`` are ``None`` unless
a scenario (or scope) installs them, and instrumented layers only ever
read the attribute::

    t = self.env.telemetry
    if t is not None:
        t.counter("broker.submits").inc()

That inversion is what keeps observability zero-cost when uninstalled
and keeps ``obs`` free to import every layer it observes without cycles.
A *direct* ``repro.obs`` import from an instrumented layer breaks both
properties at once, so the rule below enforces the boundary statically.
"""

from __future__ import annotations

import ast
import os
from typing import Tuple, Type

from ..engine import LintContext, Rule

__all__ = ["ObsDirectImportRule"]


class ObsDirectImportRule(Rule):
    """``repro.obs`` imported from an instrumented layer.

    ``core/``, ``streaming/``, ``multiprog/``, ``grid/`` and ``net/``
    are *observed* layers: they must reach observability exclusively
    through the ``env.tracer`` / ``env.telemetry`` hooks (``None`` when
    not installed), never by importing :mod:`repro.obs`.  Importing it
    directly inverts the dependency arrow (obs imports the layers it
    observes), reintroduces overhead for uninstrumented runs, and risks
    import cycles.
    """

    id = "obs-direct-import"
    category = "layering"
    summary = ("instrumented layers (core/streaming/multiprog/grid/net) "
               "must not import repro.obs — use the env.telemetry/"
               "env.tracer hooks")
    node_types: Tuple[Type[ast.AST], ...] = (ast.Import, ast.ImportFrom)

    #: Path segments marking the instrumented (observed) layers.
    _RESTRICTED = ("core", "streaming", "multiprog", "grid", "net")

    def applies_to(self, relpath: str) -> bool:
        parts = relpath.replace(os.sep, "/").split("/")
        return any(segment in parts for segment in self._RESTRICTED)

    def _report(self, node: ast.AST, ctx: LintContext, what: str) -> None:
        ctx.report(self, node,
                   f"{what} from an instrumented layer — read the "
                   f"env.telemetry/env.tracer hook instead "
                   f"(`t = env.telemetry` / `if t is not None:`)")

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                if name == "repro.obs" or name.startswith("repro.obs."):
                    self._report(node, ctx, f"import {name}")
            return
        assert isinstance(node, ast.ImportFrom)
        module = node.module or ""
        # Absolute: from repro.obs[.x] import ... / from repro import obs
        if module == "repro.obs" or module.startswith("repro.obs."):
            self._report(node, ctx, f"from {module} import ...")
            return
        if module == "repro" and any(a.name == "obs" for a in node.names):
            self._report(node, ctx, "from repro import obs")
            return
        # Relative: from ..obs[.x] import ... / from .. import obs
        if node.level >= 1:
            if module == "obs" or module.startswith("obs."):
                dots = "." * node.level
                self._report(node, ctx,
                             f"from {dots}{module} import ...")
            elif not module and any(a.name == "obs" for a in node.names):
                dots = "." * node.level
                self._report(node, ctx, f"from {dots} import obs")
