"""The simlint rule catalog.

``ALL_RULES`` is the default rule set used by ``repro lint`` and the CI
gate; ``rules_by_id`` supports ``--select``-style subsets and the
fixture tests.  Adding a rule: subclass :class:`repro.analysis.engine.Rule`
in :mod:`.determinism` or :mod:`.kernel` (or a new module), then append
an instance here — the engine, CLI, JSON report, and docs table pick it
up from this registry.

The former :mod:`.layering` rules (``obs-direct-import``,
``broker-factory``, ``compiled-lane-purity``) migrated to the
whole-program pass: they are now data in
:data:`repro.analysis.flows.layers.REPRO_LAYERS` and run under ``repro
lint --flows`` as ``flow-obs-isolation`` / ``flow-broker-factory`` /
``flow-sim-purity``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..engine import Rule
from .determinism import (
    EnvironReadRule,
    IdHashOrderRule,
    SetIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from .kernel import (
    BareExceptRule,
    KernelQueuePushRule,
    RawTimeoutLoopRule,
    SwallowedErrorRule,
    TriggerInInitRule,
)

__all__ = ["ALL_RULES", "rules_by_id", "rules_by_category"]

#: Default rule set, in catalog order (determinism, then kernel).
ALL_RULES: List[Rule] = [
    SetIterationRule(),
    UnseededRandomRule(),
    WallClockRule(),
    IdHashOrderRule(),
    EnvironReadRule(),
    RawTimeoutLoopRule(),
    KernelQueuePushRule(),
    TriggerInInitRule(),
    BareExceptRule(),
    SwallowedErrorRule(),
]


def rules_by_id(ids: Sequence[str]) -> List[Rule]:
    """Resolve rule ids to instances (raises on unknown ids)."""
    catalog: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}
    unknown = sorted(set(ids) - set(catalog))
    if unknown:
        raise KeyError(f"unknown simlint rule(s): {unknown}; "
                       f"known: {sorted(catalog)}")
    return [catalog[i] for i in ids]


def rules_by_category(category: str) -> List[Rule]:
    """All catalog rules in one category (``determinism``/``kernel``)."""
    return [rule for rule in ALL_RULES if rule.category == category]
