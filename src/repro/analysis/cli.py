"""``repro lint`` — run simlint from the command line.

Exit status is 0 when no findings survive suppression filtering, 1
otherwise (2 for usage errors), so the command can gate CI directly.
The JSON report (``--json``) is what the CI lint job uploads as an
artifact.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .engine import collect_files, findings_to_json, lint_paths, render_findings
from .rules import ALL_RULES, rules_by_id


def lint_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simlint: determinism & kernel-lifecycle static "
                    "analysis for the simulation codebase.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files/directories to lint (default: src)")
    parser.add_argument("--json", metavar="FILE", dest="json_path",
                        help="also write a JSON report "
                             "('-' for stdout instead of the text report)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id:20s} [{rule.category}] {rule.summary}")
        return 0

    try:
        rules = (rules_by_id([r.strip() for r in args.select.split(",")])
                 if args.select else ALL_RULES)
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return 2

    paths = args.paths or ["src"]
    files = collect_files(paths)
    if not files:
        print(f"repro lint: no python files under {paths}", file=sys.stderr)
        return 2
    findings = lint_paths(paths, rules)

    payload = findings_to_json(findings, checked_files=len(files),
                               rule_ids=[r.id for r in rules])
    if args.json_path == "-":
        print(payload)
    else:
        render_findings(findings)
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.json_path}", file=sys.stderr)
    return 1 if findings else 0
