"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure (or ablation), prints
the rows/series the paper reports alongside the paper's own numbers, and
asserts the *shape* checks.  pytest-benchmark times the regeneration.
"""

from __future__ import annotations


def regenerate(benchmark, runner, label: str):
    """Run one experiment under pytest-benchmark and verify its shape."""
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    print()
    print(result.render())
    failed = [c.render() for c in result.checks if not c.passed]
    assert not failed, f"{label}: " + "; ".join(failed)
    return result
