"""Regenerates Figure 7 — I/O streaming round trips, wide-area grid.

Paper shape: fast ≈ ssh ≈ glogin below 1 KB (higher variance for fast);
glogin degrades at 10 KB; reliable ≈ ssh at 10 KB.
"""

from repro.experiments import StreamingConfig, run_fig7

from conftest import regenerate


def test_bench_fig7(benchmark):
    config = StreamingConfig(scenario="wan", sequences=500)
    regenerate(benchmark, lambda: run_fig7(config), "fig7")
