"""Microbenchmarks of the substrate itself (real pytest-benchmark rounds).

These do not reproduce paper results; they track the simulator's own
throughput so regressions in the kernel/network layers are visible.
"""

from repro.net import Listener, Network, connect
from repro.sim import AnyOf, Environment, RandomStreams, Store, Timer


def test_bench_event_throughput(benchmark):
    """Pure timeout churn: events scheduled + processed per run."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(20_000):
                yield env.timeout(0.001)

        env.process(ticker())
        env.run()
        return env.now

    result = benchmark(run)
    assert result > 0


def test_bench_process_chains(benchmark):
    """Process spawn/wait chains (the broker's dominant pattern)."""

    def run():
        env = Environment()

        def leaf():
            yield env.timeout(0.01)
            return 1

        def parent():
            total = 0
            for _ in range(2_000):
                total += yield env.process(leaf())
            return total

        proc = env.process(parent())
        env.run()
        return proc.value

    assert benchmark(run) == 2_000


def test_bench_store_pingpong(benchmark):
    """Producer/consumer handoff through a Store."""

    def run():
        env = Environment()
        a_to_b, b_to_a = Store(env), Store(env)

        def side_a():
            for i in range(5_000):
                yield a_to_b.put(i)
                yield b_to_a.get()

        def side_b():
            for _ in range(5_000):
                item = yield a_to_b.get()
                yield b_to_a.put(item)

        env.process(side_a())
        proc = env.process(side_b())
        env.run()
        return True

    assert benchmark(run)


def test_bench_fanin_anyof(benchmark):
    """Wide AnyOf fan-in: the lazy-detach Condition path.

    The seed's decision-time callback removal made this quadratic in the
    fan width; with lazy detach the losers just early-return.
    """

    def run():
        env = Environment()

        def waiter():
            for _ in range(50):
                events = [env.timeout(i + 1, value=i) for i in range(500)]
                result = yield AnyOf(env, events)
                assert list(result.values()) == [0]

        env.process(waiter())
        env.run()
        return env.now

    assert benchmark(run) > 0


def test_bench_timer_churn(benchmark):
    """Re-armable Timer vs the seed's timeout-per-tick idiom.

    Models the stream-buffer pattern: arm a deadline, cancel it almost
    every time (a synchronous flush wins the race), occasionally let it
    fire.  With lazy tombstones this allocates no per-tick events.
    """

    def run():
        env = Environment()
        fired = [0]

        def churner():
            t = Timer(env, callback=lambda tm: fired.__setitem__(
                0, fired[0] + 1))
            for i in range(20_000):
                t.arm(5.0)
                if i % 100 == 99:
                    yield env.timeout(6.0)  # let this one fire
                else:
                    yield env.timeout(0.001)
                    t.cancel()

        env.process(churner())
        env.run()
        return fired[0]

    assert benchmark(run) == 200


def test_bench_zero_delay_lanes(benchmark):
    """Zero-delay succeed chains: pure deque-lane traffic, no heap."""

    def run():
        env = Environment()

        def chain():
            for _ in range(20_000):
                ev = env.event()
                ev.succeed()
                yield ev

        env.process(chain())
        env.run()
        return True

    assert benchmark(run)


def test_bench_network_messages(benchmark):
    """Connection send/recv round trips through the routed fabric."""

    def run():
        env = Environment()
        net = Network(env, RandomStreams(1))
        net.add_host("a")
        net.add_host("b")
        net.add_link("a", "b", latency=0.0001, bandwidth=1e9)
        listener = Listener(net, net.host("b"), 1)

        def server():
            conn = yield from listener.accept()
            for _ in range(2_000):
                msg = yield from conn.recv()
                yield from conn.send(msg, 64)

        def client():
            conn = yield from connect(net, "a", "b", 1)
            for i in range(2_000):
                yield from conn.send(i, 64)
                yield from conn.recv()

        env.process(server())
        proc = env.process(client())
        env.run(until=proc)
        return True

    assert benchmark(run)


def test_bench_broker_submission(benchmark):
    """End-to-end broker submissions per second (quick path)."""

    def run():
        from repro.core import CrossBroker
        from repro.grid import campus_grid
        from repro.jdl import JobDescription
        from repro.workloads import immediate_output_app

        tb = campus_grid(seed=1, n_nodes=4)
        tb.publish_all_now()
        broker = CrossBroker(tb.env, tb.network, tb.rng, tb.calibration)
        for i in range(5):
            job = JobDescription.from_attributes({
                "executable": "x",
                "jobtype": ["interactive", "sequential"],
                "streamingmode": "fast",
            }, owner=f"u{i}")
            submitted = broker.submit(job,
                                      lambda r: immediate_output_app(
                                          run_for=0.1))
            tb.env.run(until=submitted.finished)
        return len(broker.reports)

    assert benchmark(run) == 5
