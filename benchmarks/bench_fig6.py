"""Regenerates Figure 6 — I/O streaming round trips, campus grid.

Paper shape: fast best everywhere; glogin poor; reliable slowest at 10 B
but beats ssh at 10 KB.
"""

from repro.experiments import StreamingConfig, run_fig6

from conftest import regenerate


def test_bench_fig6(benchmark):
    config = StreamingConfig(scenario="campus", sequences=500)
    regenerate(benchmark, lambda: run_fig6(config), "fig6")
