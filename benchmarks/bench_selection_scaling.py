"""Regenerates the §6.1 in-text discovery/selection timings and their
scaling with grid size (selection grows, discovery stays flat)."""

from repro.experiments import SelectionScalingConfig, run_selection_scaling

from conftest import regenerate


def test_bench_selection_scaling(benchmark):
    config = SelectionScalingConfig(site_counts=(5, 10, 20, 40), jobs=6)
    regenerate(benchmark, lambda: run_selection_scaling(config),
               "selection-scaling")
