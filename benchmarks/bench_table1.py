"""Regenerates Table I — response time for jobs (seconds).

Paper rows (campus): glogin 16.43, idle 17.2, virtual machine 6.79,
job+agent 29.3; discovery ~0.5 s; selection ~3 s at 20 sites.
"""

from repro.experiments import Table1Config, run_table1

from conftest import regenerate


def test_bench_table1(benchmark):
    config = Table1Config(jobs_per_method=25)
    regenerate(benchmark, lambda: run_table1(config), "table1")
