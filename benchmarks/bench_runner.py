"""Engine benchmarks: sharded execution overhead and the cache fast path.

Two properties worth tracking over time:

* the runner's bookkeeping (planning, hashing, merging) is negligible
  next to the simulation itself;
* a fully cached run skips every simulation and is dominated by pickle
  loads — this is the "re-runs only simulate missing cells" promise.
"""

from repro.experiments.table1 import Table1Config
from repro.runner import ResultCache, run_experiment


def _config() -> Table1Config:
    return Table1Config(jobs_per_method=4, n_sites=3, scenarios=("campus",))


def test_bench_runner_serial(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table1", _config()),
        rounds=1, iterations=1)
    assert result.data["runner"].cells_computed == 4


def test_bench_runner_cache_hit(benchmark, tmp_path):
    cache = ResultCache(str(tmp_path))
    run_experiment("table1", _config(), cache=cache)  # populate

    result = benchmark.pedantic(
        lambda: run_experiment("table1", _config(), cache=cache),
        rounds=3, iterations=1)
    assert result.data["runner"].cells_computed == 0
    assert result.data["runner"].cells_cached == 4
