"""Regenerates Figure 8 — VM load overhead (CPU and I/O per iteration).

Paper statistics: CPU 0.921 s (ref) -> 1.004 s (PL=10) -> 1.132 s (PL=25);
I/O 6.06 ms -> 6.32 ms -> 6.61 ms; exclusive and shared-alone
indistinguishable.
"""

from repro.experiments import Fig8Config, run_fig8

from conftest import regenerate


def test_bench_fig8(benchmark):
    config = Fig8Config(iterations=1000)  # the paper's full 1000 iterations
    regenerate(benchmark, lambda: run_fig8(config), "fig8")
