"""Regenerates the ablation studies over the paper's design choices:

* CA/CS buffer size (the §6.2 crossover explanation);
* reliable-mode retry interval under injected outages (§4 knobs);
* PerformanceLoss sweep beyond the paper's {10, 25} (§6.3);
* degree of multiprogramming > 2 (§5.2/§7 future work);
* fair-share half-life (§5.1 priority restoration).
"""

from repro.experiments import (
    BufferSweepConfig,
    DegreeSweepConfig,
    HalfLifeSweepConfig,
    PerformanceLossSweepConfig,
    RetrySweepConfig,
    run_buffer_sweep,
    run_degree_sweep,
    run_half_life_sweep,
    run_performance_loss_sweep,
    run_retry_sweep,
)

from conftest import regenerate


def test_bench_ablation_buffer(benchmark):
    config = BufferSweepConfig(sequences=200)
    regenerate(benchmark, lambda: run_buffer_sweep(config), "ablation-buffer")


def test_bench_ablation_retry(benchmark):
    regenerate(benchmark, lambda: run_retry_sweep(RetrySweepConfig()),
               "ablation-retry")


def test_bench_ablation_performance_loss(benchmark):
    config = PerformanceLossSweepConfig(iterations=300)
    regenerate(benchmark, lambda: run_performance_loss_sweep(config),
               "ablation-pl")


def test_bench_ablation_degree(benchmark):
    config = DegreeSweepConfig(iterations=120)
    regenerate(benchmark, lambda: run_degree_sweep(config), "ablation-degree")


def test_bench_ablation_half_life(benchmark):
    regenerate(benchmark, lambda: run_half_life_sweep(HalfLifeSweepConfig()),
               "ablation-halflife")


def test_bench_fairshare_saturation(benchmark):
    from repro.experiments import run_fairshare_saturation

    regenerate(benchmark, run_fairshare_saturation, "fairshare-saturation")
