#!/usr/bin/env python
"""Runtime steering of an MPICH-G2 job spread across two grid sites.

Reproduces the paper's headline scenario (§1, §4, Figure 4): a parallel
interactive application runs remotely on several sites; each subjob has
its own Console Agent; all agents connect to one Job Shadow on the user's
machine; typed input is broadcast to every subjob (rank 0 consumes it) and
steers the running simulation.

Run:  python examples/interactive_mpi_steering.py
"""

from repro import Scenario
from repro.calibration import WAN
from repro.grid import SiteConfig
from repro.jdl import JobDescription
from repro.workloads import steerable_simulation


def main() -> None:
    # Scenario gives us the campus world (uab); the wide-area execution
    # site is grafted on before the index is published — the builder's
    # worlds stay ordinary Testbeds, open to extension.
    handle = Scenario(sites=1, scenario="campus", nodes_per_site=1,
                      seed=11, publish=False).build()
    handle.testbed.add_site(SiteConfig("ifca", n_nodes=1), WAN)
    handle.publish_all_now()
    env = handle.env
    broker = handle.broker

    job = JobDescription.from_jdl(
        """
        Executable    = "interactive_mpich-g2_app";
        JobType       = {"interactive", "mpich-g2"};
        NodeNumber    = 2;
        StreamingMode = "reliable";
        MachineAccess = "exclusive";
        """,
        owner="enol")
    print(f"submitting {job.node_number}-rank MPICH-G2 job "
          f"({job.console_agents} Console Agents will be spawned)")

    submitted = broker.submit(
        job, lambda rank: steerable_simulation(rank, steps=8, step_cpu=0.5))

    def user(env):
        # Wait for some output, then steer the simulation parameter.
        for _ in range(4):
            line = yield submitted.session.shadow.console.get()
            print(f"[{env.now:7.2f}s] rank{line.subjob}: {line.data}")
        print(f"[{env.now:7.2f}s] user types: set 5.0")
        yield from submitted.session.type_line("set 5.0", nbytes=8)
        while not submitted.finished.triggered:
            line = yield submitted.session.shadow.console.get()
            print(f"[{env.now:7.2f}s] rank{line.subjob}: {line.data}")
        results = submitted.finished.value
        return results

    user_proc = env.process(user(env), name="user")
    env.run(until=submitted.finished)
    env.run(until=env.now + 5)

    report = submitted.report
    print(f"\njob ran on sites {report.sites}; "
          f"submission {report.submission_time:.2f} s, "
          f"first output after {report.response_time:.2f} s")
    print("rank results:", submitted.finished.value)


if __name__ == "__main__":
    main()
