#!/usr/bin/env python
"""Interactive session through a firewall tunnel (§7 future work).

The paper's conclusions call for "tunneling capabilities through firewalls
without a range of available ports open for Globus".  Here the user's
machine opens NO inbound port at all: the Console Shadow makes a single
*outbound* connection to a relay on the broker machine and the Console
Agent attaches to the same session key — the relay multiplexes the Grid
Console over those two outbound connections.

Run:  python examples/firewall_tunnel.py
"""

from repro import Scenario
from repro.jdl import StreamingMode
from repro.net import RelayService, TunnelEndpoint
from repro.streaming import InteractiveSession
from repro.workloads import interactive_console_app


def main() -> None:
    # No broker/MDS in this demo, so skip the index publish.
    handle = Scenario(sites=1, scenario="campus", nodes_per_site=1,
                      seed=13, publish=False).build()
    testbed = handle.testbed
    env = handle.env
    node = handle.node()

    relay = RelayService(env, testbed.network, "broker")
    print("relay service on broker:2813 (the only open port anywhere)")

    def driver():
        endpoint = yield from TunnelEndpoint.register(
            testbed.network, "ui", "broker", "demo-session")
        session = InteractiveSession(
            env, testbed.network, testbed.rng,
            testbed.calibration.streaming, "ui", StreamingMode.FAST,
            n_subjobs=1, tunnel_endpoint=endpoint, relay_host="broker",
            tunnel_key="demo-session")
        print(f"shadow registered via tunnel; inbound port on ui: "
              f"{session.shadow.port}")

        node.acquire("demo")
        proc = node.execute(interactive_console_app(), "console",
                            interactive=True,
                            setup=session.make_setup(node.name, 0))
        banner = yield from session.read_line()
        print(f"[{env.now:6.3f}s] job says: {banner.data}")
        for command in ("status", "compute", "exit"):
            yield from session.type_line(command)
            print(f"[{env.now:6.3f}s] user -> {command}")
            if command != "exit":
                reply = yield from session.read_line()
                print(f"[{env.now:6.3f}s] job  <- {reply.data}")
        yield proc
        return relay.messages_relayed

    proc = env.process(driver())
    env.run(until=proc)
    print(f"\nsession complete; {proc.value} messages crossed the relay")


if __name__ == "__main__":
    main()
