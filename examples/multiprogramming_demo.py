#!/usr/bin/env python
"""Multiprogramming demo: interactive fast-startup on a busy grid.

Reproduces the paper's Figure 5 story end-to-end: a batch job fills the
only machine (planting a glide-in agent on the way in); an interactive
job then starts *immediately* on the agent's interactive VM instead of
waiting hours, slowing the batch job by exactly its PerformanceLoss; the
batch job's owner is billed the cheap displaced-batch application factor
while sharing.

Run:  python examples/multiprogramming_demo.py
"""

from repro import Scenario
from repro.core import SubmissionPath
from repro.jdl import JobDescription
from repro.workloads import cpu_bound_app, progress_app


def main() -> None:
    # ONE machine in the grid.
    handle = Scenario(sites=1, scenario="campus", nodes_per_site=1,
                      seed=3).build()
    env = handle.env
    broker = handle.broker

    batch = JobDescription.from_jdl('Executable = "hours_of_physics";',
                                    owner="bob")
    batch_submitted = broker.submit(batch, lambda r: cpu_bound_app(600.0))
    env.run(until=batch_submitted.started)
    print(f"[{env.now:7.2f}s] batch job started on "
          f"{batch_submitted.report.sites} "
          f"(path {batch_submitted.report.path.value})")
    print(f"          grid is now fully busy; "
          f"free interactive VMs: {len(broker.agents.free_interactive())}")

    interactive = JobDescription.from_jdl(
        """
        Executable      = "steering_frontend";
        JobType         = {"interactive", "sequential"};
        MachineAccess   = "shared";
        PerformanceLoss = 25;
        StreamingMode   = "fast";
        """,
        owner="alice")
    inter_submitted = broker.submit(interactive,
                                    lambda r: progress_app(5, 2.0))
    env.run(until=inter_submitted.finished)

    rep = inter_submitted.report
    assert rep.path is SubmissionPath.INTERACTIVE_SHARED_VM
    print(f"[{env.now:7.2f}s] interactive job done; "
          f"submission took {rep.submission_time:.2f} s "
          f"(no Globus, no local queue!)")
    print(f"          priorities: "
          f"alice={broker.fairshare.priority('alice'):.4f} "
          f"bob={broker.fairshare.priority('bob'):.4f}")

    env.run(until=batch_submitted.finished)
    print(f"[{env.now:7.2f}s] batch job finished "
          f"(delayed by the interactive guest's 25% share)")
    env.run(until=env.now + 10)
    print(f"          agents left on the machine: "
          f"{len(broker.agents.live_agents())} (agent leaves after the "
          f"batch job completes)")

    from repro.metrics import render_timeline

    print()
    print(render_timeline(broker.trace))


if __name__ == "__main__":
    main()
