#!/usr/bin/env python
"""Split execution on REAL processes and REAL sockets.

The simulated stack carries the paper's evaluation; this demo runs the
same Grid Console protocol for real: a Python subprocess ("the job") has
its stdin/stdout/stderr trapped by a :class:`RealConsoleAgent` and
forwarded over TCP to a :class:`RealConsoleShadow` — the program runs
unmodified and behaves exactly as if it ran on the home machine (§4).

Run:  python examples/real_split_execution.py
"""

import sys
import textwrap

from repro.interposition import RealConsoleAgent, RealConsoleShadow

JOB_SOURCE = textwrap.dedent("""
    import sys
    print("simulation ready; commands: run <n>, quit")
    while True:
        line = sys.stdin.readline()
        if not line:
            break
        cmd = line.strip()
        if cmd == "quit":
            print("shutting down")
            break
        if cmd.startswith("run "):
            n = int(cmd.split()[1])
            total = sum(i * i for i in range(n))
            print(f"result({n}) = {total}")
        else:
            print(f"unknown command: {cmd}", file=sys.stderr)
""")


def main() -> None:
    shadow = RealConsoleShadow()
    print(f"shadow listening on {shadow.host}:{shadow.port} "
          f"(randomly probed port, as in the paper)")

    agent = RealConsoleAgent(
        [sys.executable, "-u", "-c", JOB_SOURCE],
        shadow.host, shadow.port, reliable=True).start()
    print(f"agent started job pid={agent.proc.pid}; stdio is trapped")

    banner = shadow.read_line(timeout=10)
    print(f"[job {banner.kind}] {banner.data.decode().strip()}")

    for command in ("run 1000", "bogus", "run 5", "quit"):
        print(f"[user types ] {command}")
        shadow.send_line(command.encode())
        reply = shadow.read_line(timeout=10)
        print(f"[job {reply.kind}] {reply.data.decode().strip()}")

    exit_code = agent.join(timeout=10)
    print(f"job exited with code {exit_code}; "
          f"frames sent: {agent.stats.frames_sent}, "
          f"reconnects: {agent.stats.reconnects}")
    agent.close()
    shadow.close()


if __name__ == "__main__":
    main()
