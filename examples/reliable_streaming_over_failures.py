#!/usr/bin/env python
"""Reliable streaming through network failures.

§3's reliable mode: "Regardless of why the input/output operation failed,
our streaming mechanism will keep processes running and, at regular
intervals, it will try the network connection again.  If the connection
succeeds, it will transfer any buffered data to the other communication
end, and then resume normal operation."

This demo injects two outages into the campus<->site link while an
interactive application keeps producing output; every line still reaches
the user's console, in order, with the delivery gap visible in the
timestamps.

Run:  python examples/reliable_streaming_over_failures.py
"""

from repro import Scenario
from repro.jdl import StreamingMode
from repro.streaming import InteractiveSession


def ticker(ctx):
    for i in range(24):
        yield from ctx.io(0.5)
        yield from ctx.stdio.write(f"measurement {i:02d}", nbytes=24,
                                   eol=True)
    yield from ctx.stdio.eof()
    return "done"


def main() -> None:
    # No broker/MDS in this demo, so skip the index publish.
    handle = Scenario(sites=1, scenario="campus", nodes_per_site=1,
                      seed=5, publish=False).build()
    testbed = handle.testbed
    env = handle.env
    site = handle.site()
    node = handle.node()

    # Two failure windows on the site uplink.
    testbed.network.inject_outage("core", site.gatekeeper_host, 2.0, 3.0)
    testbed.network.inject_outage("core", site.gatekeeper_host, 8.0, 2.0)
    print("injected outages: t=[2,5)s and t=[8,10)s on the site uplink")

    session = InteractiveSession(env, testbed.network, testbed.rng,
                                 testbed.calibration.streaming, "ui",
                                 StreamingMode.RELIABLE)
    node.acquire("demo")
    proc = node.execute(ticker, "ticker", interactive=True,
                        setup=session.make_setup(node.name, 0))
    session.watch(proc)

    def reader(env):
        received = []
        for _ in range(24):
            line = yield from session.read_line()
            received.append(line)
        return received

    reader_proc = env.process(reader(env), name="reader")
    env.run(until=reader_proc)

    produced_gap = 0.0
    for line in reader_proc.value:
        marker = "  <- delivered after outage" \
            if line.time - produced_gap > 1.5 else ""
        print(f"[{line.time:6.2f}s] {line.data}{marker}")
        produced_gap = line.time

    stats = session.agents[0].sender.stats
    print(f"\nall 24 lines delivered in order; "
          f"sender retries: {stats.retries}, "
          f"chunks sent: {stats.sent}, lost: {stats.dropped}")


if __name__ == "__main__":
    main()
