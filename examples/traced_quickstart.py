#!/usr/bin/env python
"""Traced quickstart: where does an interactive submission spend its time?

Same world as ``quickstart.py``, but with a :class:`repro.obs.Tracer`
installed on the environment before the job is submitted.  Every
instrumented middleware stage (matchmaking, GRAM traversal, streaming
chunks, output staging) then records spans against sim-time, and the
per-phase breakdown table decomposes the Table-I-style response time.

Run:  python examples/traced_quickstart.py
"""

from repro import Scenario
from repro.jdl import JobDescription
from repro.metrics import counters_table, phase_breakdown_table
from repro.workloads import progress_app


def main() -> None:
    # The one extra flag versus quickstart.py: trace=True attaches a
    # Tracer to the environment's (otherwise zero-cost) observability hook.
    handle = Scenario(sites=1, scenario="campus", nodes_per_site=4,
                      seed=7, trace=True).build()
    tracer = handle.tracer
    assert tracer is not None

    job = JobDescription.from_jdl(
        """
        Executable    = "simulation";
        JobType       = {"interactive", "sequential"};
        NodeNumber    = 1;
        StreamingMode = "fast";
        MachineAccess = "exclusive";
        Requirements  = other.OpSys == "Linux" && other.FreeCPUs >= 1;
        """,
        owner="alice")

    submitted = handle.submit(job, lambda rank: progress_app(5, 1.0))
    handle.run(until=submitted.finished)

    report = submitted.report
    print(f"job {report.job_id}: response time "
          f"{report.response_time:.2f}s on {report.sites}")
    print()
    print(phase_breakdown_table(
        tracer, title="Where the time went (per phase)").render())
    print()
    print(counters_table(tracer).render())
    print()
    breakdown = tracer.job_breakdown(report.job_id)
    total = breakdown.get("submit", 0.0)
    for phase, seconds in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        if phase == "submit" or total <= 0:
            continue
        print(f"  {phase:<18} {seconds:7.3f}s  ({100 * seconds / total:4.1f}% "
              f"of the submit span)")


if __name__ == "__main__":
    main()
