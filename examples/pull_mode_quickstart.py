#!/usr/bin/env python
"""Pull-model brokering: the same submission, inverted control flow.

Instead of the CrossBroker *pushing* work onto sites chosen from a
possibly stale MDS snapshot, ``broker_mode="pull"`` queues the job
centrally and lets per-site agents claim work when they actually have
free capacity (the AliEn production model).  The handle API is
unchanged — only the Scenario flag differs from ``quickstart.py``.

Run:  python examples/pull_mode_quickstart.py
"""

from repro import Scenario
from repro.jdl import JobDescription
from repro.workloads import progress_app


def main() -> None:
    # Four europe-profile sites; each starts a pull agent that long-polls
    # the broker's task queue.
    handle = Scenario(sites=4, scenario="europe", nodes_per_site=2,
                      seed=11, broker_mode="pull").build()

    job = JobDescription.from_jdl(
        """
        Executable    = "simulation";
        JobType       = {"interactive", "sequential"};
        StreamingMode = "fast";
        MachineAccess = "exclusive";
        Requirements  = other.FreeCPUs >= 1;
        """,
        owner="alice")

    submitted = handle.submit(job, lambda rank: progress_app(5, 1.0))
    handle.run(until=submitted.finished)

    report = submitted.report
    print(f"job {report.job_id} ran on {report.sites} "
          f"via path {report.path.value}")
    print(f"  queue wait (claim) : {report.selection_time:6.2f} s")
    print(f"  submission         : {report.submission_time:6.2f} s "
          f"(to first output)")
    print(f"  total response     : {report.response_time:6.2f} s")
    print("console output:")
    assert submitted.session is not None
    for line in submitted.session.shadow.lines:
        print(f"  [{line.time:7.2f}s] {line.data}")

    # Wind the mode-owned services down (site agents + queue listener).
    handle.run(until=handle.env.process(handle.broker.drain(),
                                        name="drain"))


if __name__ == "__main__":
    main()
