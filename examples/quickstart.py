#!/usr/bin/env python
"""Quickstart: submit an interactive job through the CrossBroker.

Builds a one-site campus grid through the :class:`repro.Scenario`
builder, submits an interactive job described in JDL (paper Figure 2
syntax), and prints the Table-I-style timing decomposition plus the
job's console output.

Run:  python examples/quickstart.py
"""

from repro import Scenario
from repro.jdl import JobDescription
from repro.workloads import progress_app


def main() -> None:
    # A world: campus network, one site with 4 worker nodes, MDS index —
    # one declarative call instead of hand-wiring testbed + broker.
    handle = Scenario(sites=1, scenario="campus", nodes_per_site=4,
                      seed=7).build()

    job = JobDescription.from_jdl(
        """
        Executable    = "simulation";
        Arguments     = "-n";
        JobType       = {"interactive", "sequential"};
        NodeNumber    = 1;
        StreamingMode = "fast";
        MachineAccess = "exclusive";
        Requirements  = other.OpSys == "Linux" && other.FreeCPUs >= 1;
        """,
        owner="alice")

    submitted = handle.submit(job, lambda rank: progress_app(5, 1.0))
    handle.run(until=submitted.finished)

    report = submitted.report
    print(f"job {report.job_id} ran on {report.sites} "
          f"via path {report.path.value}")
    print(f"  resource discovery : {report.discovery_time:6.2f} s")
    print(f"  resource selection : {report.selection_time:6.2f} s")
    print(f"  submission         : {report.submission_time:6.2f} s "
          f"(to first output)")
    print(f"  total response     : {report.response_time:6.2f} s")
    print("console output:")
    assert submitted.session is not None
    for line in submitted.session.shadow.lines:
        print(f"  [{line.time:7.2f}s] {line.data}")


if __name__ == "__main__":
    main()
