#!/usr/bin/env python
"""A day in the life of the grid: replay a multi-user workload mix.

Generates a synthetic batch+interactive job stream (several users, Poisson
arrivals), replays it against the CrossBroker on a 4-site Europe testbed,
and prints the per-job timeline plus summary statistics — the paper's
production-testbed situation in miniature.

Run:  python examples/grid_day_in_the_life.py
"""

from collections import Counter

from repro import Scenario
from repro.jdl import JobCategory
from repro.metrics import Series, render_timeline
from repro.sim import RandomStreams
from repro.workloads import (
    MixConfig,
    cpu_bound_app,
    generate_mix,
    immediate_output_app,
    replay,
)


def main() -> None:
    handle = Scenario(sites=4, scenario="europe", nodes_per_site=3,
                      seed=2026).build()
    testbed = handle.testbed
    broker = handle.broker

    config = MixConfig(horizon=2400.0, batch_interarrival=350.0,
                       interactive_interarrival=200.0,
                       batch_runtime_mean=700.0,
                       interactive_runtime_mean=80.0,
                       shared_fraction=0.6)
    arrivals = generate_mix(RandomStreams(2026), config)
    print(f"generated {len(arrivals)} jobs over {config.horizon/60:.0f} "
          f"simulated minutes "
          f"({sum(a.job.is_interactive for a in arrivals)} interactive)")

    def behavior_for(arrival, rank):
        if arrival.job.category is JobCategory.BATCH:
            return cpu_bound_app(arrival.runtime)
        return immediate_output_app(run_for=arrival.runtime)

    submitted, feeder = replay(testbed.env, broker, arrivals, behavior_for)
    testbed.env.run(until=feeder)
    # Drain the tail.
    deadline = testbed.env.now + 3 * 3600
    while testbed.env.now < deadline and any(
            not s.finished.triggered and s.report.error is None
            and not s.report.rejected for s in submitted):
        testbed.env.run(until=testbed.env.now + 120)

    print()
    print(render_timeline(broker.trace, width=76, max_jobs=24))

    paths = Counter(s.report.path.value for s in submitted if s.report.path)
    print("\nsubmission paths taken:")
    for path, count in paths.most_common():
        print(f"  {path:<32} {count}")

    interactive = [s for s in submitted
                   if s.job.is_interactive and s.report.success
                   and s.report.response_time > 0]
    if interactive:
        responses = Series.of("resp",
                              [s.report.response_time for s in interactive])
        print(f"\ninteractive response times: mean {responses.mean:.1f}s "
              f"std {responses.std:.1f}s over {len(interactive)} jobs")
        shared = [s.report.submission_time for s in interactive
                  if s.report.path and "shared-vm" in s.report.path.value]
        exclusive = [s.report.submission_time for s in interactive
                     if s.report.path and "exclusive" in s.report.path.value]
        if shared and exclusive:
            print(f"  shared-VM submissions   : mean "
                  f"{Series.of('s', shared).mean:.1f}s")
            print(f"  exclusive submissions   : mean "
                  f"{Series.of('e', exclusive).mean:.1f}s "
                  f"(the Table I gap, live)")
    print(f"\nfair-share priorities at close: " + ", ".join(
        f"{user}={broker.fairshare.priority(user):.3f}"
        for user in sorted(broker.fairshare.users())))


if __name__ == "__main__":
    main()
